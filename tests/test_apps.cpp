// Unit tests for the five application models.
#include <gtest/gtest.h>

#include <map>

#include "apps/apps.hpp"
#include "common/check.hpp"

namespace musa::apps {
namespace {

TEST(Registry, HasTheFivePaperApps) {
  const auto& apps = registry();
  ASSERT_EQ(apps.size(), 5u);
  EXPECT_EQ(apps[0].name, "hydro");
  EXPECT_EQ(apps[1].name, "spmz");
  EXPECT_EQ(apps[2].name, "btmz");
  EXPECT_EQ(apps[3].name, "spec3d");
  EXPECT_EQ(apps[4].name, "lulesh");
}

TEST(Registry, FindAppResolvesAndThrows) {
  EXPECT_EQ(find_app("lulesh").name, "lulesh");
  EXPECT_THROW(find_app("hpl"), SimError);
}

TEST(Characteristics, MatchThePaperNarrative) {
  // Paper §IV-B/§V-A qualitative properties baked into the models.
  const AppModel& hydro = find_app("hydro");
  const AppModel& spmz = find_app("spmz");
  const AppModel& spec3d = find_app("spec3d");
  const AppModel& lulesh = find_app("lulesh");

  // Specfem3D: far too few tasks to fill a 64-core node (Fig. 3).
  EXPECT_LT(spec3d.tasks_per_region, 64);
  // HYDRO: abundant fine-grain tasks, the best-scaling code.
  EXPECT_GT(hydro.tasks_per_region, 500);
  // LULESH: short vector loops (no SIMD gain); strong thread imbalance.
  EXPECT_LE(lulesh.kernel.vec_trip, 4);
  EXPECT_GT(lulesh.task_imbalance, 0.2);
  // SP-MZ: the long vectorisable loops that keep gaining to 2048-bit.
  EXPECT_GE(spmz.kernel.vec_trip, 32);
  // LULESH synchronises globally every step (Fig. 4 barrier waits).
  EXPECT_TRUE(lulesh.barrier);
  EXPECT_TRUE(lulesh.allreduce);
  // Spec3D: serial dependence chains (latency-bound, OoO-sensitive).
  EXPECT_EQ(spec3d.kernel.ilp_chains, 1);
}

TEST(Region, TaskCountAndWorkArePositive) {
  for (const auto& app : registry()) {
    const trace::Region r = make_region(app);
    EXPECT_GE(static_cast<int>(r.tasks.size()), app.tasks_per_region)
        << app.name;
    for (const auto& t : r.tasks) {
      EXPECT_GT(t.work, 0.0);
      EXPECT_EQ(t.type, 0);
    }
    EXPECT_GT(r.total_work(), 0.0);
  }
}

TEST(Region, DependenciesPointBackwards) {
  for (const auto& app : registry()) {
    const trace::Region r = make_region(app);
    for (std::size_t i = 0; i < r.tasks.size(); ++i)
      for (auto d : r.tasks[i].deps) {
        EXPECT_GE(d, 0);
        EXPECT_LT(static_cast<std::size_t>(d), i);
      }
  }
}

TEST(Region, SerialSegmentsCreateGates) {
  const AppModel& btmz = find_app("btmz");
  ASSERT_GT(btmz.serial_segments, 0);
  const trace::Region r = make_region(btmz);
  // Serial gate tasks depend on an entire chunk.
  std::size_t max_deps = 0;
  for (const auto& t : r.tasks) max_deps = std::max(max_deps, t.deps.size());
  EXPECT_GT(max_deps, 10u);
}

TEST(Region, DeterministicInSeed) {
  const AppModel& app = find_app("lulesh");
  const trace::Region a = make_region(app, 5);
  const trace::Region b = make_region(app, 5);
  const trace::Region c = make_region(app, 6);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  bool differs = false;
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.tasks[i].work, b.tasks[i].work);
    if (i < c.tasks.size() && a.tasks[i].work != c.tasks[i].work)
      differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(BurstTrace, OneTracePerRank) {
  const AppModel& app = find_app("spmz");
  const trace::AppTrace t = make_burst_trace(app, 16);
  ASSERT_EQ(t.num_ranks(), 16);
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(t.ranks[r].rank, r);
    EXPECT_FALSE(t.ranks[r].events.empty());
  }
}

TEST(BurstTrace, ComputeBurstsPerIteration) {
  const AppModel& app = find_app("hydro");
  const trace::AppTrace t = make_burst_trace(app, 4);
  int computes = 0;
  for (const auto& e : t.ranks[0].events)
    if (e.kind == trace::BurstEvent::Kind::kCompute) ++computes;
  EXPECT_EQ(computes, app.iterations);
}

TEST(BurstTrace, SendsAndRecvsBalancePerRank) {
  for (const auto& app : registry()) {
    const trace::AppTrace t = make_burst_trace(app, 8);
    for (const auto& rank : t.ranks) {
      std::map<trace::MpiOp, int> counts;
      for (const auto& e : rank.events)
        if (e.kind == trace::BurstEvent::Kind::kMpi) ++counts[e.op];
      EXPECT_EQ(counts[trace::MpiOp::kIsend], counts[trace::MpiOp::kIrecv])
          << app.name;
      EXPECT_EQ(counts[trace::MpiOp::kWait],
                counts[trace::MpiOp::kIsend] + counts[trace::MpiOp::kIrecv])
          << app.name;
    }
  }
}

TEST(BurstTrace, CollectiveCountsAreUniform) {
  // Every rank must cross the same number of collectives, in order.
  for (const auto& app : registry()) {
    const trace::AppTrace t = make_burst_trace(app, 8);
    int expected = -1;
    for (const auto& rank : t.ranks) {
      int collectives = 0;
      for (const auto& e : rank.events)
        if (e.kind == trace::BurstEvent::Kind::kMpi &&
            (e.op == trace::MpiOp::kAllreduce ||
             e.op == trace::MpiOp::kBarrier))
          ++collectives;
      if (expected < 0) expected = collectives;
      EXPECT_EQ(collectives, expected) << app.name;
    }
  }
}

TEST(BurstTrace, RankImbalanceProducesSkew) {
  const AppModel& app = find_app("lulesh");  // rank_imbalance = 0.12
  const trace::AppTrace t = make_burst_trace(app, 64);
  double min_burst = 1e30, max_burst = 0.0;
  for (const auto& rank : t.ranks)
    for (const auto& e : rank.events)
      if (e.kind == trace::BurstEvent::Kind::kCompute) {
        min_burst = std::min(min_burst, e.seconds);
        max_burst = std::max(max_burst, e.seconds);
      }
  EXPECT_GT(max_burst / min_burst, 1.15);
}

TEST(BurstTrace, SingleRankHasNoMpi) {
  const AppModel& app = find_app("btmz");
  const trace::AppTrace t = make_burst_trace(app, 1);
  for (const auto& e : t.ranks[0].events)
    EXPECT_EQ(e.kind, trace::BurstEvent::Kind::kCompute);
}

TEST(KernelProfiles, StreamSharesSumBelowOne) {
  for (const auto& app : registry()) {
    double total = 0.0;
    for (const auto& s : app.kernel.streams) total += s.share;
    EXPECT_NEAR(total, 1.0, 0.05) << app.name;
    EXPECT_GT(app.kernel.instrs_per_outer(), 0) << app.name;
  }
}

TEST(Phases, PrimaryPhaseMirrorsLegacyFields) {
  const AppModel& app = find_app("btmz");
  const auto phases = app.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].tasks_per_region, app.tasks_per_region);
  EXPECT_DOUBLE_EQ(phases[0].ref_region_seconds, app.ref_region_seconds);
  EXPECT_EQ(phases[0].kernel.name, app.kernel.name);
}

AppModel two_phase_app() {
  AppModel a = find_app("hydro");
  a.name = "twophase";
  Phase second;
  second.name = "solve";
  second.kernel = find_app("spec3d").kernel;
  second.task_instrs = 1e6;
  second.tasks_per_region = 16;
  second.ref_region_seconds = 4e-3;
  a.extra_phases.push_back(second);
  return a;
}

TEST(Phases, ExtraPhasesAppend) {
  const AppModel a = two_phase_app();
  const auto phases = a.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[1].name, "solve");
  EXPECT_EQ(phases[1].tasks_per_region, 16);
}

TEST(Phases, BurstTraceTagsRegionIds) {
  const AppModel a = two_phase_app();
  const trace::AppTrace t = make_burst_trace(a, 4);
  int r0 = 0, r1 = 0;
  for (const auto& e : t.ranks[0].events) {
    if (e.kind != trace::BurstEvent::Kind::kCompute) continue;
    if (e.region_id == 0) ++r0;
    if (e.region_id == 1) ++r1;
  }
  EXPECT_EQ(r0, a.iterations);
  EXPECT_EQ(r1, a.iterations);
}

TEST(Phases, RegionsDifferPerPhase) {
  const AppModel a = two_phase_app();
  const trace::Region main_region = make_region(a.phases()[0], 1);
  const trace::Region solve_region = make_region(a.phases()[1], 2);
  EXPECT_GT(main_region.tasks.size(), solve_region.tasks.size());
}

class AppSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(AppSweep, BurstTraceReplayableShape) {
  const AppModel& app = find_app(GetParam());
  const trace::AppTrace t = make_burst_trace(app, 32);
  // Every Isend's peer must Irecv from us symmetric counts (ring).
  std::vector<int> sends(32, 0), recvs(32, 0);
  for (const auto& rank : t.ranks)
    for (const auto& e : rank.events) {
      if (e.kind != trace::BurstEvent::Kind::kMpi) continue;
      if (e.op == trace::MpiOp::kIsend) ++sends[e.peer];
      if (e.op == trace::MpiOp::kIrecv) ++recvs[rank.rank];
    }
  for (int r = 0; r < 32; ++r) EXPECT_EQ(sends[r], recvs[r]);
}

INSTANTIATE_TEST_SUITE_P(All, AppSweep,
                         ::testing::Values("hydro", "spmz", "btmz", "spec3d",
                                           "lulesh"));

}  // namespace
}  // namespace musa::apps
