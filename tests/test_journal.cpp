// Unit tests for the crash-safety layer: atomic file replacement, the
// append-only result journal (checksums, truncated-tail recovery, schema
// pinning), and journal discovery for sharded sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "common/journal.hpp"

namespace musa {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

const std::vector<std::string> kHeader = {"a", "b", "c"};

TEST(Journal, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors; external tools (tools/journal_status.py)
  // recompute these checksums and must agree byte-for-byte.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fsio, AtomicWriteReplacesContentAndLeavesNoTmp) {
  const std::string path = tmp_path("musa_fsio_atomic.txt");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  atomic_write_file(path, "second, longer content\n");
  EXPECT_EQ(read_file(path), "second, longer content\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Fsio, DurableAppenderAppends) {
  const std::string path = tmp_path("musa_fsio_append.txt");
  std::remove(path.c_str());
  {
    DurableAppender out(path);
    out.append("one\n");
    out.append("two\n");
  }
  EXPECT_EQ(read_file(path), "one\ntwo\n");
  std::remove(path.c_str());
}

TEST(Journal, AppendReloadRoundTrip) {
  const std::string path = tmp_path("musa_journal_rt.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    EXPECT_EQ(j.size(), 0u);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"x", "y", "z"});
    EXPECT_TRUE(j.contains("k1"));
    EXPECT_FALSE(j.contains("k9"));
  }
  const ResultJournal::LoadResult lr = ResultJournal::read(path, kHeader);
  EXPECT_FALSE(lr.schema_mismatch);
  EXPECT_EQ(lr.dropped, 0u);
  ASSERT_EQ(lr.entries.size(), 2u);
  EXPECT_EQ(lr.entries.at("k2"),
            (std::vector<std::string>{"x", "y", "z"}));
  std::remove(path.c_str());
}

TEST(Journal, DuplicateKeyKeepsLastRecord) {
  const std::string path = tmp_path("musa_journal_dup.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k", {"1", "1", "1"});
    j.append("k", {"2", "2", "2"});
    EXPECT_EQ(j.size(), 1u);
  }
  const auto lr = ResultJournal::read(path, kHeader);
  ASSERT_EQ(lr.entries.size(), 1u);
  EXPECT_EQ(lr.entries.at("k")[0], "2");
  std::remove(path.c_str());
}

TEST(Journal, TruncatedTailIsDroppedAndRecovered) {
  const std::string path = tmp_path("musa_journal_trunc.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"4", "5", "6"});
    j.append("k3", {"7", "8", "9"});
  }
  // Chop bytes off the end, as a kill -9 mid-write would.
  const std::string text = read_file(path);
  write_file(path, text.substr(0, text.size() - 5));

  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_FALSE(lr.schema_mismatch);
  EXPECT_EQ(lr.entries.size(), 2u);  // k3's record lost its checksum
  EXPECT_EQ(lr.dropped, 1u);
  EXPECT_EQ(lr.entries.count("k3"), 0u);

  // Reopening compacts the corrupt tail away and appends cleanly.
  {
    ResultJournal j(path, kHeader);
    EXPECT_EQ(j.size(), 2u);
    EXPECT_EQ(j.dropped_on_load(), 1u);
    j.append("k3", {"7", "8", "9"});
  }
  const auto healed = ResultJournal::read(path, kHeader);
  EXPECT_EQ(healed.entries.size(), 3u);
  EXPECT_EQ(healed.dropped, 0u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptedRecordFailsChecksum) {
  const std::string path = tmp_path("musa_journal_flip.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"4", "5", "6"});
  }
  // Flip one payload byte of the first record (bit rot / partial write).
  std::string text = read_file(path);
  const auto pos = text.find("1,2,3");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '9';
  write_file(path, text);

  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.dropped, 1u);
  EXPECT_EQ(lr.entries.size(), 1u);
  EXPECT_EQ(lr.entries.count("k1"), 0u);  // never silently accepted
  std::remove(path.c_str());
}

TEST(Journal, SchemaMismatchDiscardsWholesale) {
  const std::string path = tmp_path("musa_journal_schema.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k", {"1", "2", "3"});
  }
  const auto lr = ResultJournal::read(path, {"other", "columns"});
  EXPECT_TRUE(lr.schema_mismatch);
  EXPECT_TRUE(lr.entries.empty());
  {
    // Opening for writing under a new schema starts a fresh journal.
    ResultJournal j(path, {"other", "columns"});
    EXPECT_EQ(j.size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(Journal, RejectsDelimiterInKeyOrCells) {
  const std::string path = tmp_path("musa_journal_delim.journal");
  std::remove(path.c_str());
  ResultJournal j(path, kHeader);
  EXPECT_THROW(j.append("bad\tkey", {"1", "2", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1,5", "2", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1", "2\n", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1", "2"}), SimError);  // width mismatch
  j.append("k", {"1", "2", "3"});
  std::remove(path.c_str());
}

TEST(Journal, FindJournalsMatchesCacheAndShardNames) {
  const std::string base = tmp_path("musa_find_me.csv");
  const std::vector<std::string> mine = {
      base + ".journal",
      base + ".shard-0-of-2.journal",
      base + ".shard-1-of-2.journal",
  };
  for (const auto& p : mine) write_file(p, "x");
  write_file(base, "the artifact itself");
  write_file(base + ".journal.tmp", "in-flight compaction");
  write_file(tmp_path("musa_find_other.csv.journal"), "different artifact");

  const std::vector<std::string> found = find_journals(base);
  EXPECT_EQ(found, mine);  // sorted, exact set

  for (const auto& p : mine) std::remove(p.c_str());
  std::remove(base.c_str());
  std::remove((base + ".journal.tmp").c_str());
  std::remove(tmp_path("musa_find_other.csv.journal").c_str());
}

// ---- Quarantine (FAIL) rows -----------------------------------------------

TEST(Journal, FailRowsRoundTripWithChecksum) {
  const std::string path = tmp_path("musa_journal_fail.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("good", {"1", "2", "3"});
    j.append_fail("bad", {"io", "kernel", 3, "disk exploded"});
    EXPECT_TRUE(j.contains_fail("bad"));
    EXPECT_FALSE(j.contains_fail("good"));
  }
  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.entries.size(), 1u);
  ASSERT_EQ(lr.fails.size(), 1u);
  const auto& f = lr.fails.at("bad");
  EXPECT_EQ(f.error_class, "io");
  EXPECT_EQ(f.stage, "kernel");
  EXPECT_EQ(f.attempts, 3);
  EXPECT_EQ(f.message, "disk exploded");
  std::remove(path.c_str());
}

TEST(Journal, GoodRowSupersedesFailInEitherOrder) {
  const std::string path = tmp_path("musa_journal_fail_order.journal");
  std::remove(path.c_str());
  {
    // FAIL first, then a good row for the same key (a successful retry).
    ResultJournal j(path, kHeader);
    j.append_fail("k", {"io", "burst", 1, "flaky"});
    j.append("k", {"1", "2", "3"});
    EXPECT_FALSE(j.contains_fail("k"));
    EXPECT_TRUE(j.contains("k"));
  }
  auto lr = ResultJournal::read(path, kHeader);
  EXPECT_TRUE(lr.fails.empty());
  EXPECT_EQ(lr.entries.count("k"), 1u);

  // The reverse order on disk (good row written by a sibling before the
  // FAIL was appended) must resolve identically: good always wins.
  write_file(path, read_file(path));  // keep compacted form
  {
    ResultJournal j(path, kHeader);
    j.append_fail("k", {"model", "replay", 1, "late quarantine"});
    // In-memory too: the existing good entry blocks the FAIL.
    EXPECT_FALSE(j.contains_fail("k"));
  }
  lr = ResultJournal::read(path, kHeader);
  EXPECT_TRUE(lr.fails.empty());
  EXPECT_EQ(lr.entries.count("k"), 1u);
  std::remove(path.c_str());
}

TEST(Journal, DuplicateFailRowsDedupeToLast) {
  const std::string path = tmp_path("musa_journal_fail_dup.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append_fail("k", {"io", "burst", 1, "first"});
    j.append_fail("k", {"timeout", "replay", 2, "second"});
  }
  const auto lr = ResultJournal::read(path, kHeader);
  ASSERT_EQ(lr.fails.size(), 1u);
  EXPECT_EQ(lr.fails.at("k").error_class, "timeout");
  EXPECT_EQ(lr.fails.at("k").message, "second");
  EXPECT_EQ(lr.fails.at("k").attempts, 2);
  std::remove(path.c_str());
}

TEST(Journal, FailMessagesAreSanitisedNotRejected) {
  const std::string path = tmp_path("musa_journal_fail_dirty.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    // Exception text with every delimiter the record format uses, plus an
    // oversized payload: quarantine must absorb it, never throw.
    j.append_fail("k", {"io", "ker,nel", 1,
                        "tab\there, comma, and\nnewline " +
                            std::string(1000, 'x')});
  }
  const auto lr = ResultJournal::read(path, kHeader);
  ASSERT_EQ(lr.fails.size(), 1u);
  const auto& f = lr.fails.at("k");
  EXPECT_EQ(f.stage, "ker;nel");
  EXPECT_EQ(f.message.find('\t'), std::string::npos);
  EXPECT_EQ(f.message.find(','), std::string::npos);
  EXPECT_LE(f.message.size(), 256u);
  EXPECT_EQ(lr.dropped, 0u);  // sanitised record still checksums clean
  std::remove(path.c_str());
}

TEST(Journal, CompactionPreservesUnresolvedFails) {
  const std::string path = tmp_path("musa_journal_fail_compact.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("done", {"1", "2", "3"});
    j.append_fail("broken", {"invariant", "verify", 1, "bad result"});
    j.append_fail("fixed", {"io", "burst", 1, "flaky"});
    j.append("fixed", {"4", "5", "6"});
  }
  // Reopen: compaction rewrites the file; the unresolved FAIL must survive,
  // the resolved one must be gone.
  {
    ResultJournal j(path, kHeader);
    EXPECT_TRUE(j.contains_fail("broken"));
    EXPECT_FALSE(j.contains_fail("fixed"));
    EXPECT_TRUE(j.contains("fixed"));
    EXPECT_EQ(j.size(), 2u);
  }
  std::remove(path.c_str());
}

TEST(Journal, ResultKeysMayNotUseTheFailPrefix) {
  const std::string path = tmp_path("musa_journal_fail_prefix.journal");
  std::remove(path.c_str());
  ResultJournal j(path, kHeader);
  EXPECT_THROW(j.append("FAIL!sneaky", {"1", "2", "3"}), SimError);
  std::remove(path.c_str());
}

TEST(Journal, AppendMutatorCorruptionIsDetectedOnLoad) {
  const std::string path = tmp_path("musa_journal_mutator.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.set_append_mutator([](const std::string& key, const std::string& line) {
      if (key != "victim") return line;
      std::string out = line;
      out[out.size() - 2] = out[out.size() - 2] == '0' ? '1' : '0';
      return out;
    });
    j.append("victim", {"1", "2", "3"});
    j.append("witness", {"4", "5", "6"});
    // The mutated record is treated as lost work, exactly like a crash.
    EXPECT_FALSE(j.contains("victim"));
    EXPECT_TRUE(j.contains("witness"));
  }
  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.dropped, 1u);  // checksum caught the damage
  EXPECT_EQ(lr.entries.count("victim"), 0u);
  EXPECT_EQ(lr.entries.count("witness"), 1u);
  std::remove(path.c_str());
}


// ---- Strict numeric decode of FAIL / LEASE payloads ------------------------
//
// These records carry counters (attempts, chunk ids, point ranges) that
// the controller trusts. A record whose checksum is *valid* but whose
// numeric cell is garbage — a forged or bit-rotted-then-rechecksummed
// line — must be dropped and counted like any corruption, never decoded
// as zero (zero is a real chunk id and a real attempt count).

/// A correctly checksummed record line for an arbitrary payload — what a
/// forger (or a buggy external writer) could produce. Mirrors
/// record_line() using the public fnv1a64.
std::string forge_line(const std::string& key,
                       const std::vector<std::string>& cells) {
  std::string payload = key + '\t';
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) payload += ',';
    payload += cells[i];
  }
  char sum[17];
  std::snprintf(sum, sizeof sum, "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  return payload + '\t' + sum + '\n';
}

void append_raw(const std::string& path, const std::string& line) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  out << line;
}

TEST(Journal, WellFormedForgedFailIsAcceptedProvingTheForgeHelper) {
  const std::string path = tmp_path("musa_journal_forge_ok.journal");
  std::remove(path.c_str());
  { ResultJournal j(path, kHeader); }
  append_raw(path, forge_line("FAIL!k", {"io", "kernel", "3", "boom"}));
  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.dropped, 0u);
  ASSERT_EQ(lr.fails.size(), 1u);
  EXPECT_EQ(lr.fails.at("k").attempts, 3);
  std::remove(path.c_str());
}

TEST(Journal, FailWithMalformedAttemptsIsDroppedNotZeroed) {
  const std::string path = tmp_path("musa_journal_forge_fail.journal");
  std::remove(path.c_str());
  { ResultJournal j(path, kHeader); }
  // One malformed numeric cell per line; every line checksums correctly.
  append_raw(path, forge_line("FAIL!a", {"io", "kernel", "3x7", "m"}));
  append_raw(path, forge_line("FAIL!b", {"io", "kernel", "", "m"}));
  append_raw(path, forge_line("FAIL!c", {"io", "kernel", "-2", "m"}));
  append_raw(path, forge_line("FAIL!d", {"io", "kernel", " 3", "m"}));
  append_raw(path, forge_line("FAIL!e", {"io", "kernel", "1e2", "m"}));
  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_TRUE(lr.fails.empty());
  EXPECT_EQ(lr.dropped, 5u);
  std::remove(path.c_str());
}

TEST(Journal, LeaseWithMalformedNumericCellsIsDropped) {
  const std::string path = tmp_path("musa_journal_forge_lease.journal");
  std::remove(path.c_str());
  { ResultJournal j(path, kHeader); }
  // Cell order: event, chunk, worker, begin, end, detail.
  append_raw(path,
             forge_line("LEASE!0", {"granted", "abc", "0", "0", "4", "d"}));
  append_raw(path,
             forge_line("LEASE!1", {"granted", "0", "1.5", "0", "4", "d"}));
  append_raw(path,
             forge_line("LEASE!2", {"granted", "0", "0", "-1", "4", "d"}));
  append_raw(path,
             forge_line("LEASE!3", {"granted", "0", "0", "0", "+4", "d"}));
  // chunk/worker may legitimately be -1 (sentinels); below that is forged.
  append_raw(path,
             forge_line("LEASE!4", {"granted", "-2", "0", "0", "4", "d"}));
  // And one good line to prove the reader still accepts real records.
  append_raw(path,
             forge_line("LEASE!5", {"granted", "-1", "2", "0", "4", "d"}));
  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.dropped, 5u);
  ASSERT_EQ(lr.leases.size(), 1u);
  EXPECT_EQ(lr.leases[0].chunk, -1);
  EXPECT_EQ(lr.leases[0].worker, 2);
  EXPECT_EQ(lr.leases[0].end, 4u);
  std::remove(path.c_str());
}

TEST(Journal, FindRowAndFindFailMatchTheUnlockedViews) {
  // The thread-safe lookups the DSE server uses must agree with the plain
  // entries()/fails() views single-threaded code reads.
  const std::string path = tmp_path("musa_journal_find.journal");
  std::remove(path.c_str());
  ResultJournal j(path, kHeader);
  j.append("good", {"1", "2", "3"});
  j.append_fail("bad", {"io", "kernel", 2, "m"});

  std::vector<std::string> row;
  EXPECT_TRUE(j.find_row("good", &row));
  EXPECT_EQ(row, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_FALSE(j.find_row("bad", &row));
  EXPECT_FALSE(j.find_row("missing", &row));

  ResultJournal::FailRecord fail;
  EXPECT_TRUE(j.find_fail("bad", &fail));
  EXPECT_EQ(fail.error_class, "io");
  EXPECT_EQ(fail.attempts, 2);
  EXPECT_FALSE(j.find_fail("good", &fail));
  EXPECT_FALSE(j.find_fail("missing", &fail));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace musa
