// Unit tests for the crash-safety layer: atomic file replacement, the
// append-only result journal (checksums, truncated-tail recovery, schema
// pinning), and journal discovery for sharded sweeps.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fsio.hpp"
#include "common/journal.hpp"

namespace musa {
namespace {

std::string tmp_path(const std::string& name) {
  return std::string(::testing::TempDir()) + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

const std::vector<std::string> kHeader = {"a", "b", "c"};

TEST(Journal, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors; external tools (tools/journal_status.py)
  // recompute these checksums and must agree byte-for-byte.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fsio, AtomicWriteReplacesContentAndLeavesNoTmp) {
  const std::string path = tmp_path("musa_fsio_atomic.txt");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  atomic_write_file(path, "second, longer content\n");
  EXPECT_EQ(read_file(path), "second, longer content\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(Fsio, DurableAppenderAppends) {
  const std::string path = tmp_path("musa_fsio_append.txt");
  std::remove(path.c_str());
  {
    DurableAppender out(path);
    out.append("one\n");
    out.append("two\n");
  }
  EXPECT_EQ(read_file(path), "one\ntwo\n");
  std::remove(path.c_str());
}

TEST(Journal, AppendReloadRoundTrip) {
  const std::string path = tmp_path("musa_journal_rt.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    EXPECT_EQ(j.size(), 0u);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"x", "y", "z"});
    EXPECT_TRUE(j.contains("k1"));
    EXPECT_FALSE(j.contains("k9"));
  }
  const ResultJournal::LoadResult lr = ResultJournal::read(path, kHeader);
  EXPECT_FALSE(lr.schema_mismatch);
  EXPECT_EQ(lr.dropped, 0u);
  ASSERT_EQ(lr.entries.size(), 2u);
  EXPECT_EQ(lr.entries.at("k2"),
            (std::vector<std::string>{"x", "y", "z"}));
  std::remove(path.c_str());
}

TEST(Journal, DuplicateKeyKeepsLastRecord) {
  const std::string path = tmp_path("musa_journal_dup.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k", {"1", "1", "1"});
    j.append("k", {"2", "2", "2"});
    EXPECT_EQ(j.size(), 1u);
  }
  const auto lr = ResultJournal::read(path, kHeader);
  ASSERT_EQ(lr.entries.size(), 1u);
  EXPECT_EQ(lr.entries.at("k")[0], "2");
  std::remove(path.c_str());
}

TEST(Journal, TruncatedTailIsDroppedAndRecovered) {
  const std::string path = tmp_path("musa_journal_trunc.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"4", "5", "6"});
    j.append("k3", {"7", "8", "9"});
  }
  // Chop bytes off the end, as a kill -9 mid-write would.
  const std::string text = read_file(path);
  write_file(path, text.substr(0, text.size() - 5));

  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_FALSE(lr.schema_mismatch);
  EXPECT_EQ(lr.entries.size(), 2u);  // k3's record lost its checksum
  EXPECT_EQ(lr.dropped, 1u);
  EXPECT_EQ(lr.entries.count("k3"), 0u);

  // Reopening compacts the corrupt tail away and appends cleanly.
  {
    ResultJournal j(path, kHeader);
    EXPECT_EQ(j.size(), 2u);
    EXPECT_EQ(j.dropped_on_load(), 1u);
    j.append("k3", {"7", "8", "9"});
  }
  const auto healed = ResultJournal::read(path, kHeader);
  EXPECT_EQ(healed.entries.size(), 3u);
  EXPECT_EQ(healed.dropped, 0u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptedRecordFailsChecksum) {
  const std::string path = tmp_path("musa_journal_flip.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k1", {"1", "2", "3"});
    j.append("k2", {"4", "5", "6"});
  }
  // Flip one payload byte of the first record (bit rot / partial write).
  std::string text = read_file(path);
  const auto pos = text.find("1,2,3");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '9';
  write_file(path, text);

  const auto lr = ResultJournal::read(path, kHeader);
  EXPECT_EQ(lr.dropped, 1u);
  EXPECT_EQ(lr.entries.size(), 1u);
  EXPECT_EQ(lr.entries.count("k1"), 0u);  // never silently accepted
  std::remove(path.c_str());
}

TEST(Journal, SchemaMismatchDiscardsWholesale) {
  const std::string path = tmp_path("musa_journal_schema.journal");
  std::remove(path.c_str());
  {
    ResultJournal j(path, kHeader);
    j.append("k", {"1", "2", "3"});
  }
  const auto lr = ResultJournal::read(path, {"other", "columns"});
  EXPECT_TRUE(lr.schema_mismatch);
  EXPECT_TRUE(lr.entries.empty());
  {
    // Opening for writing under a new schema starts a fresh journal.
    ResultJournal j(path, {"other", "columns"});
    EXPECT_EQ(j.size(), 0u);
  }
  std::remove(path.c_str());
}

TEST(Journal, RejectsDelimiterInKeyOrCells) {
  const std::string path = tmp_path("musa_journal_delim.journal");
  std::remove(path.c_str());
  ResultJournal j(path, kHeader);
  EXPECT_THROW(j.append("bad\tkey", {"1", "2", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1,5", "2", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1", "2\n", "3"}), SimError);
  EXPECT_THROW(j.append("k", {"1", "2"}), SimError);  // width mismatch
  j.append("k", {"1", "2", "3"});
  std::remove(path.c_str());
}

TEST(Journal, FindJournalsMatchesCacheAndShardNames) {
  const std::string base = tmp_path("musa_find_me.csv");
  const std::vector<std::string> mine = {
      base + ".journal",
      base + ".shard-0-of-2.journal",
      base + ".shard-1-of-2.journal",
  };
  for (const auto& p : mine) write_file(p, "x");
  write_file(base, "the artifact itself");
  write_file(base + ".journal.tmp", "in-flight compaction");
  write_file(tmp_path("musa_find_other.csv.journal"), "different artifact");

  const std::vector<std::string> found = find_journals(base);
  EXPECT_EQ(found, mine);  // sorted, exact set

  for (const auto& p : mine) std::remove(p.c_str());
  std::remove(base.c_str());
  std::remove((base + ".journal.tmp").c_str());
  std::remove(tmp_path("musa_find_other.csv.journal").c_str());
}

}  // namespace
}  // namespace musa
