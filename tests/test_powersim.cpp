// Unit tests for the McPAT/DRAMPower-like power models.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "cpusim/core_config.hpp"
#include "powersim/power.hpp"
#include "powersim/tech.hpp"

namespace musa::powersim {
namespace {

NodeActivity busy_activity(int cores) {
  NodeActivity a;
  a.ops_s[static_cast<int>(isa::OpClass::kIntAlu)] = 1e9 * cores;
  a.ops_s[static_cast<int>(isa::OpClass::kFpMul)] = 0.5e9 * cores;
  a.lanes_s[static_cast<int>(isa::OpClass::kIntAlu)] = 1e9 * cores;
  a.lanes_s[static_cast<int>(isa::OpClass::kFpMul)] = 1e9 * cores;  // 2 lanes
  a.l1_access_s = 0.5e9 * cores;
  a.l2_access_s = 5e7 * cores;
  a.l3_access_s = 1e7 * cores;
  a.active_cores = cores;
  a.total_cores = cores;
  return a;
}

TEST(Tech, VoltageMatchesPaperAnchors) {
  EXPECT_NEAR(voltage_for_ghz(1.5), 0.75, 1e-9);
  EXPECT_NEAR(voltage_for_ghz(3.0), 1.05, 1e-9);
  EXPECT_GT(dynamic_scale(1.05), dynamic_scale(0.75));
}

TEST(CorePower, HigherFrequencyCostsMorePower) {
  const auto cfg = cpusim::core_medium();
  const CorePower low(cfg, 128, 1.5);
  const CorePower high(cfg, 128, 3.0);
  const NodeActivity a = busy_activity(1);
  EXPECT_GT(high.evaluate_w(a), low.evaluate_w(a));
}

TEST(CorePower, WiderVectorsLeakMore) {
  const auto cfg = cpusim::core_medium();
  const CorePower narrow(cfg, 128, 2.0);
  const CorePower wide(cfg, 512, 2.0);
  EXPECT_GT(wide.core_leakage_w(), narrow.core_leakage_w());
  // FPU leakage scales ~4x with 4x lanes; total core leakage grows.
  EXPECT_GT(wide.core_leakage_w() / narrow.core_leakage_w(), 1.3);
}

TEST(CorePower, BiggerCoresLeakMore) {
  const CorePower lowend(cpusim::core_low_end(), 128, 2.0);
  const CorePower aggressive(cpusim::core_aggressive(), 128, 2.0);
  EXPECT_GT(aggressive.core_leakage_w(), lowend.core_leakage_w());
}

TEST(CorePower, IdleCoresStillBurnLeakage) {
  const CorePower p(cpusim::core_medium(), 128, 2.0);
  NodeActivity idle;
  idle.active_cores = 0;
  idle.total_cores = 64;
  const double w = p.evaluate_w(idle);
  EXPECT_NEAR(w, 64 * p.core_leakage_w(), 1e-9);
  EXPECT_GT(w, 10.0);  // the paper's "leakage waste" effect is material
}

TEST(CorePower, VectorOpEnergyScalesWithLanes) {
  const CorePower p(cpusim::core_medium(), 512, 2.0);
  const double e1 = p.op_energy_j(isa::OpClass::kFpMul, 1);
  const double e8 = p.op_energy_j(isa::OpClass::kFpMul, 8);
  EXPECT_GT(e8, e1);
  EXPECT_LT(e8, 8 * e1);  // amortised, not 8x
}

TEST(CachePower, LeakageGrowsWithCapacity) {
  const auto small = cachesim::cache_32m_256k(64);
  const auto big = cachesim::cache_96m_1m(64);
  const CachePower ps(small, 2.0), pb(big, 2.0);
  NodeActivity idle;
  idle.total_cores = 64;
  EXPECT_GT(pb.evaluate_w(idle), 2.0 * ps.evaluate_w(idle));
}

TEST(CachePower, DynamicGrowsWithAccessRate) {
  const CachePower p(cachesim::cache_32m_256k(32), 2.0);
  NodeActivity quiet;
  quiet.total_cores = 32;
  NodeActivity loud = quiet;
  loud.l2_access_s = 1e10;
  loud.l3_access_s = 1e9;
  EXPECT_GT(p.evaluate_w(loud), p.evaluate_w(quiet));
}

TEST(DramPower, DoublingDimmsDoublesBackground) {
  const DramPower p8(8), p16(16);
  const dramsim::DramCounters idle;
  EXPECT_NEAR(p16.evaluate_w(idle, 1.0), 2.0 * p8.evaluate_w(idle, 1.0),
              1e-9);
}

TEST(DramPower, CommandsAddDynamicPower) {
  const DramPower p(8);
  dramsim::DramCounters busy;
  busy.acts = 1'000'000;
  busy.reads = 4'000'000;
  busy.writes = 1'000'000;
  const dramsim::DramCounters idle;
  EXPECT_GT(p.evaluate_w(busy, 0.01), p.evaluate_w(idle, 0.01));
}

TEST(DramPower, DimmsForChannelsMatchesPaper) {
  // 2 DIMMs per channel: 8 DIMMs/64 GB at 4ch, 16 DIMMs/128 GB at 8ch.
  EXPECT_EQ(DramPower::dimms_for_channels(4), 8);
  EXPECT_EQ(DramPower::dimms_for_channels(8), 16);
}

TEST(DramPower, RejectsZeroDimms) { EXPECT_THROW(DramPower(0), SimError); }

TEST(PowerBreakdown, TotalSumsComponents) {
  PowerBreakdown b{.core_l1_w = 100, .l2_l3_w = 20, .dram_w = 15};
  EXPECT_DOUBLE_EQ(b.total(), 135.0);
}

// Property: the paper's 2x-frequency ≈ 2.5x node power relation holds to
// first order for a busy node (V/f scaling of dynamic + V scaling of leak).
TEST(PowerScaling, FrequencyDoublingCostsMoreThanDouble) {
  const auto cfg = cpusim::core_medium();
  const NodeActivity base = busy_activity(64);
  NodeActivity fast = base;
  // Performance doubles => activity rates double.
  for (auto& v : fast.ops_s) v *= 2;
  for (auto& v : fast.lanes_s) v *= 2;
  fast.l1_access_s *= 2;
  const CorePower p15(cfg, 128, 1.5), p30(cfg, 128, 3.0);
  const double w15 = p15.evaluate_w(base);
  const double w30 = p30.evaluate_w(fast);
  EXPECT_GT(w30 / w15, 2.0);
  EXPECT_LT(w30 / w15, 3.5);
}

class VectorPowerSweep : public ::testing::TestWithParam<int> {};

TEST_P(VectorPowerSweep, PowerMonotoneInWidth) {
  const int bits = GetParam();
  const CorePower p(cpusim::core_medium(), bits, 2.0);
  const CorePower wider(cpusim::core_medium(), bits * 2, 2.0);
  const NodeActivity a = busy_activity(32);
  EXPECT_LT(p.evaluate_w(a), wider.evaluate_w(a));
}

INSTANTIATE_TEST_SUITE_P(Widths, VectorPowerSweep,
                         ::testing::Values(128, 256, 512, 1024));

}  // namespace
}  // namespace musa::powersim
