# Figure/table reproduction binaries. Declared at top level via include()
# so ${CMAKE_BINARY_DIR}/bench holds only runnable executables
# (`for b in build/bench/*; do $b; done` regenerates every paper artifact).
function(musa_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE musa_core)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

musa_add_bench(run_dse)
musa_add_bench(dse_lint)
musa_add_bench(sweep_bench)
# The sweep drivers speak to the elastic controller/worker library too.
target_link_libraries(run_dse PRIVATE musa_sweep)
target_link_libraries(sweep_bench PRIVATE musa_sweep)
# The DSE server daemon and its load generator (DESIGN.md §7i).
musa_add_bench(dse_serve)
target_link_libraries(dse_serve PRIVATE musa_serve)
musa_add_bench(dse_loadtest)
target_link_libraries(dse_loadtest PRIVATE musa_serve)
musa_add_bench(ablation_model)
musa_add_bench(power_report)
musa_add_bench(dse_report)
musa_add_bench(table1_configs)
musa_add_bench(fig1_workload_stats)
musa_add_bench(fig2_scaling)
musa_add_bench(fig3_fig4_timelines)
musa_add_bench(fig5_vector_width)
musa_add_bench(fig6_cache_size)
musa_add_bench(fig7_ooo)
musa_add_bench(fig8_mem_channels)
musa_add_bench(fig9_frequency)
musa_add_bench(fig10_pca)
musa_add_bench(fig11_unconventional)

# Component microbenchmarks (google-benchmark).
add_executable(micro_components ${CMAKE_SOURCE_DIR}/bench/micro_components.cpp)
target_link_libraries(micro_components PRIVATE musa_core benchmark::benchmark)
set_target_properties(micro_components PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
