// Table I reproduction: prints the architectural parameter grid and checks
// that its cross product is exactly the 864 simulated configurations.
#include <cstdio>

#include "common/table.hpp"
#include "core/config_space.hpp"

int main() {
  using namespace musa;

  std::printf("Table I: simulation architectural parameters\n\n");

  TextTable caches({"Label", "L3 size/assoc/lat", "L2 size/assoc/lat"});
  for (const auto& label : core::ConfigSpace::cache_labels()) {
    core::MachineConfig c;
    c.cache_label = label;
    const auto h = c.cache_config(1);
    char l3[64], l2[64];
    std::snprintf(l3, sizeof l3, "%lluMB / %d / %d",
                  static_cast<unsigned long long>(h.l3.size_bytes >> 20),
                  h.l3.ways, h.l3.latency_cycles);
    std::snprintf(l2, sizeof l2, "%llukB / %d / %d",
                  static_cast<unsigned long long>(h.l2.size_bytes >> 10),
                  h.l2.ways, h.l2.latency_cycles);
    caches.row().cell(label).cell(l3).cell(l2);
  }
  std::printf("%s\n", caches.str().c_str());

  TextTable cores({"Core", "ROB", "Issue", "StoreBuf", "ALU/FPU", "IRF/FRF"});
  for (const auto& c : cpusim::core_presets()) {
    char fu[32], rf[32];
    std::snprintf(fu, sizeof fu, "%d / %d", c.alus, c.fpus);
    std::snprintf(rf, sizeof rf, "%d / %d", c.irf, c.frf);
    cores.row()
        .cell(c.label)
        .cell(static_cast<long long>(c.rob))
        .cell(static_cast<long long>(c.issue_width))
        .cell(static_cast<long long>(c.store_buffer))
        .cell(fu)
        .cell(rf);
  }
  std::printf("%s\n", cores.str().c_str());

  TextTable other({"Other param.", "Values"});
  other.row().cell("Frequency [GHz]").cell("1.5, 2.0, 2.5, 3.0");
  other.row().cell("Vector width [bits]").cell("128, 256, 512");
  other.row().cell("Memory [DDR4-2333]").cell("4-channel, 8-channel");
  other.row().cell("Number of Cores").cell("1, 32, 64");
  std::printf("%s\n", other.str().c_str());

  const auto space = core::ConfigSpace::full_space();
  std::printf("total simulated configurations per application: %zu\n",
              space.size());
  return space.size() == 864 ? 0 : 1;
}
