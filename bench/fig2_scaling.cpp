// Figure 2 reproduction: hardware-agnostic scaling of the five applications
// at 1/32/64 cores per node — (a) single compute region without MPI,
// (b) full parallel region including MPI overheads (256 ranks).
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  constexpr int kRanks = 256;

  std::printf("Fig. 2: hardware-agnostic scaling (speed-up vs 1 core)\n\n");

  TextTable ta({"app", "1c", "32c", "64c", "eff@32", "eff@64"});
  TextTable tb({"app", "1c", "32c", "64c", "eff@32", "eff@64"});
  double eff_a32 = 0, eff_a64 = 0, eff_b32 = 0, eff_b64 = 0;
  const int napps = static_cast<int>(apps::registry().size());

  for (const auto& app : apps::registry()) {
    const core::BurstResult r1 = pipeline.run_burst(app, 1, kRanks);
    const core::BurstResult r32 = pipeline.run_burst(app, 32, kRanks);
    const core::BurstResult r64 = pipeline.run_burst(app, 64, kRanks);

    const double a32 = r1.region_seconds / r32.region_seconds;
    const double a64 = r1.region_seconds / r64.region_seconds;
    ta.row().cell(app.name).cell(1.0, 1).cell(a32, 1).cell(a64, 1)
        .cell(100 * a32 / 32, 0).cell(100 * a64 / 64, 0);
    eff_a32 += a32 / 32;
    eff_a64 += a64 / 64;

    const double b32 = r1.wall_seconds / r32.wall_seconds;
    const double b64 = r1.wall_seconds / r64.wall_seconds;
    tb.row().cell(app.name).cell(1.0, 1).cell(b32, 1).cell(b64, 1)
        .cell(100 * b32 / 32, 0).cell(100 * b64 / 64, 0);
    eff_b32 += b32 / 32;
    eff_b64 += b64 / 64;
  }

  std::printf("(a) single compute region (no MPI):\n%s", ta.str().c_str());
  std::printf("average efficiency: %.0f%% @32, %.0f%% @64  (paper: ~70%%, ~50%%)\n\n",
              100 * eff_a32 / napps, 100 * eff_a64 / napps);
  std::printf("(b) full application incl. MPI (256 ranks):\n%s",
              tb.str().c_str());
  std::printf("average efficiency: %.0f%% @32, %.0f%% @64  (paper: 49%%, 28%%)\n",
              100 * eff_b32 / napps, 100 * eff_b64 / napps);
  return 0;
}
