// Component microbenchmarks (google-benchmark): throughput of every MUSA
// substrate in isolation — cache accesses, DRAM requests, vector fusion,
// the OoO core model, runtime scheduling, MPI replay and PCA.
#include <benchmark/benchmark.h>

#include "analysis/pca.hpp"
#include "apps/apps.hpp"
#include "cachesim/hierarchy.hpp"
#include "common/rng.hpp"
#include "core/pipeline.hpp"
#include "cpusim/core_model.hpp"
#include "cpusim/runtime.hpp"
#include "dramsim/dram.hpp"
#include "isa/vector_fusion.hpp"
#include "netsim/dimemas.hpp"
#include "trace/kernel.hpp"

namespace {
using namespace musa;

void BM_CacheAccess(benchmark::State& state) {
  cachesim::Cache cache({.size_bytes = 256 * 1024, .ways = 8});
  Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        cache.access(rng.next_below(1 << 22) * 64, false).hit);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_HierarchyAccess(benchmark::State& state) {
  cachesim::MemHierarchy h(cachesim::cache_32m_256k(1));
  Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        h.access(0, rng.next_below(1 << 24) * 64, false).level);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void BM_DramRequest(benchmark::State& state) {
  dramsim::DramSystem dram(dramsim::ddr4_2333(), state.range(0));
  double t = 0.0;
  Rng rng(3);
  for (auto _ : state) {
    t += 4.0;  // ~16 GB/s offered load
    benchmark::DoNotOptimize(dram.request(t, rng.next_below(1 << 26) * 64,
                                          rng.bernoulli(0.3)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRequest)->Arg(4)->Arg(8);

void BM_VectorFusion(benchmark::State& state) {
  const apps::AppModel& app = apps::find_app("spmz");
  for (auto _ : state) {
    trace::KernelSource src(app.kernel, 20000);
    isa::VectorFusion fusion(src, static_cast<int>(state.range(0)));
    isa::FusedInstr op;
    std::uint64_t n = 0;
    while (fusion.next(op)) ++n;
    benchmark::DoNotOptimize(n);
    state.SetItemsProcessed(state.items_processed() + 20000);
  }
}
BENCHMARK(BM_VectorFusion)->Arg(128)->Arg(512)->Arg(2048);

void BM_CoreModel(benchmark::State& state) {
  const apps::AppModel& app = apps::find_app("hydro");
  for (auto _ : state) {
    cachesim::MemHierarchy h(cachesim::cache_32m_256k(1));
    dramsim::DramSystem dram(dramsim::ddr4_2333(), 4);
    cpusim::CoreModel core(cpusim::core_medium(), {2.0}, h, dram);
    trace::KernelSource src(app.kernel, 20000);
    benchmark::DoNotOptimize(core.run(src, {.vector_bits = 128}).cycles);
    state.SetItemsProcessed(state.items_processed() + 20000);
  }
}
BENCHMARK(BM_CoreModel);

void BM_RuntimeSchedule(benchmark::State& state) {
  const apps::AppModel& app = apps::find_app("hydro");
  const trace::Region region = apps::make_region(app);
  cpusim::RuntimeSim sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.run(region, {{.seconds_per_work = 1e-5}},
                {.cores = static_cast<int>(state.range(0)),
                 .dispatch_overhead_s = 100e-9})
            .seconds);
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(region.tasks.size()));
  }
}
BENCHMARK(BM_RuntimeSchedule)->Arg(32)->Arg(64);

void BM_MpiReplay(benchmark::State& state) {
  const apps::AppModel& app = apps::find_app("lulesh");
  const trace::AppTrace trace = apps::make_burst_trace(app, 256);
  netsim::DimemasEngine net({});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net.replay(trace, {.region_scale = {0.01}}).total_seconds);
  }
}
BENCHMARK(BM_MpiReplay);

void BM_FullPipeline(benchmark::State& state) {
  const apps::AppModel& app = apps::find_app("btmz");
  core::Pipeline pipeline;
  core::MachineConfig config;
  config.cores = 64;
  for (auto _ : state)
    benchmark::DoNotOptimize(pipeline.run(app, config).wall_seconds);
}
BENCHMARK(BM_FullPipeline);

void BM_Pca(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::vector<double>> obs(72, std::vector<double>(5));
  for (auto& row : obs)
    for (auto& v : row) v = rng.next_double();
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::pca(obs, {"a", "b", "c", "d", "e"}).explained_variance[0]);
}
BENCHMARK(BM_Pca);

}  // namespace

BENCHMARK_MAIN();
