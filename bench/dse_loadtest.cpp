// Load generator and correctness gate for the DSE server (dse_serve).
//
// Drives N concurrent clients firing point queries over the server's
// AF_UNIX (or loopback TCP) socket, pipelined per connection, and checks
// every reply byte-for-byte against a locally computed batch sweep of the
// same 24-point bench space (fig_common.hpp) — the served row and the
// batch row must be the *same bytes*, the server's core contract. Busy
// replies (admission backpressure) are retried with backoff; anything
// else unexpected counts as wrong and fails the run.
//
// Per-query latency (send → done reply) is measured client-side with
// exact quantiles and merged into BENCH_sweep.json as the "serve" entry,
// next to the memo/elastic numbers sweep_bench maintains.
//
// Usage:
//   dse_loadtest (--socket PATH | --tcp PORT) [--clients N] [--queries N]
//                [--warm-instrs N] [--measure-instrs N]
//                [--out BENCH_sweep.json] [--check-regression BASELINE.json]
//
// With --check-regression, zero wrong/dropped replies is asserted (always)
// and p95 latency is compared against the baseline's "serve" entry with a
// generous 5x tripwire — CI machines are noisy; an order-of-magnitude
// regression is what this catches.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/parse.hpp"
#include "core/dse.hpp"
#include "fig_common.hpp"
#include "serve/wire.hpp"
#include "sweep/protocol.hpp"

#ifndef _WIN32
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace {

using musa::core::DseEngine;
using musa::core::MachineConfig;
using musa::core::Pipeline;
using musa::core::PipelineOptions;
using musa::core::SweepOptions;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--socket PATH | --tcp PORT) [--clients N] [--queries N]\n"
      "          [--warm-instrs N] [--measure-instrs N]\n"
      "          [--out BENCH_sweep.json] [--check-regression BASE.json]\n",
      argv0);
  return 2;
}

#ifndef _WIN32

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_server(const std::string& socket_path, int tcp_port) {
  return socket_path.empty() ? connect_tcp(tcp_port)
                             : connect_unix(socket_path);
}

struct ClientResult {
  std::uint64_t wrong = 0;         // mismatched/unexpected replies
  std::uint64_t dropped = 0;       // queries never answered
  std::uint64_t busy_retries = 0;  // busy replies absorbed by retrying
  std::vector<std::uint64_t> latency_us;  // one entry per finished query
};

/// One client connection: `count` pipelined point queries, round-robin
/// over the bench configs, every row checked against `expected`.
void run_client(int client_idx, const std::string& socket_path, int tcp_port,
                const std::string& app,
                const std::vector<MachineConfig>& configs,
                const std::unordered_map<std::string, std::string>& expected,
                const std::string& fp_hex, int count, ClientResult* out) {
  const int fd = connect_server(socket_path, tcp_port);
  if (fd < 0) {
    out->wrong += static_cast<std::uint64_t>(count);
    return;
  }
  musa::sweep::LineChannel ch(fd);

  struct Query {
    std::string key;
    std::chrono::steady_clock::time_point sent;
    bool done = false;
    bool row_seen = false;
  };
  std::vector<Query> queries(static_cast<std::size_t>(count));
  std::unordered_map<std::string, std::size_t> by_id;

  const auto send_query = [&](std::size_t q) {
    const std::size_t cfg =
        (static_cast<std::size_t>(client_idx) * 7 + q) % configs.size();
    std::string id = "c";
    id += std::to_string(client_idx);
    id += "-q";
    id += std::to_string(q);
    queries[q].key = DseEngine::point_key(app, configs[cfg]);
    queries[q].sent = std::chrono::steady_clock::now();
    by_id[id] = q;
    return ch.send("{\"id\":\"" + id + "\",\"op\":\"point\",\"app\":\"" +
                   app + "\",\"config\":\"" + configs[cfg].id() +
                   "\",\"fingerprint\":\"" + fp_hex + "\"}");
  };

  for (std::size_t q = 0; q < queries.size(); ++q)
    if (!send_query(q)) {
      out->wrong += queries.size() - q;
      return;
    }

  std::size_t open = queries.size();
  std::string line;
  while (open > 0 && ch.read_line(&line)) {
    musa::serve::JsonValue reply;
    std::string err;
    if (!musa::serve::parse_json(line, &reply, &err) ||
        reply.kind != musa::serve::JsonValue::Kind::kObject) {
      ++out->wrong;
      continue;
    }
    const musa::serve::JsonValue* id = reply.find("id");
    if (id == nullptr ||
        id->kind != musa::serve::JsonValue::Kind::kString ||
        by_id.count(id->string) == 0) {
      ++out->wrong;
      continue;
    }
    Query& q = queries[by_id[id->string]];
    if (q.done) {
      ++out->wrong;  // reply after done — protocol violation
      continue;
    }
    if (reply.find("busy") != nullptr) {
      // Admission backpressure: back off briefly and re-send this query.
      ++out->busy_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      const std::size_t idx = by_id[id->string];
      by_id.erase(id->string);
      if (!send_query(idx)) {
        ++out->wrong;
        --open;
      }
      continue;
    }
    if (const musa::serve::JsonValue* row = reply.find("row")) {
      const auto want = expected.find(q.key);
      if (row->kind != musa::serve::JsonValue::Kind::kString ||
          want == expected.end() || row->string != want->second)
        ++out->wrong;
      else
        q.row_seen = true;
      continue;
    }
    if (reply.find("done") != nullptr) {
      q.done = true;
      --open;
      if (!q.row_seen) {
        ++out->wrong;  // done without the row — a dropped point reply
      } else {
        out->latency_us.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - q.sent)
                .count()));
      }
      continue;
    }
    ++out->wrong;  // error/failed/unknown reply — point queries on the
                   // bench space must always succeed
  }
  out->dropped += open;  // EOF with queries still unanswered
}

#endif  // !_WIN32

/// Pulls "<field>": out of the "serve" entry of a BENCH_sweep.json — the
/// same string-scanning idiom sweep_bench uses for its baseline.
bool parse_serve_baseline(const std::string& text, const char* field,
                          double* out) {
  const std::size_t serve = text.find("\"serve\": {");
  if (serve == std::string::npos) return false;
  const std::string needle = std::string("\"") + field + "\": ";
  const std::size_t p = text.find(needle, serve);
  if (p == std::string::npos) return false;
  *out = std::strtod(text.c_str() + p + needle.size(), nullptr);
  return true;
}

std::string read_text(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// Merges `serve_entry` (a JSON object body) into `path` as the root's
/// "serve" member, replacing any previous one; the entry is always the
/// last key, which is what lets this truncate-and-append stay simple.
bool merge_serve_entry(const std::string& path,
                       const std::string& serve_entry) {
  std::string text = read_text(path);
  const std::size_t old = text.find(",\n  \"serve\": {");
  if (old != std::string::npos) {
    text.erase(old);
  } else {
    const std::size_t close = text.rfind('}');
    if (close == std::string::npos) {
      text = "{";  // absent or unrecognisable: start a fresh document
    } else {
      text.erase(close);
      while (!text.empty() &&
             (text.back() == '\n' || text.back() == ' '))
        text.pop_back();
    }
  }
  text += ",\n  \"serve\": " + serve_entry + "\n}\n";
  if (text.compare(0, 2, "{,") == 0) text.erase(1, 1);  // fresh document
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int tcp_port = -1;
  int clients = 64;
  std::uint64_t total_queries = 2048;
  std::string out_path = "BENCH_sweep.json";
  std::string baseline_path;
  PipelineOptions pipeline;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::uint64_t v = 0;
    if (std::strcmp(a, "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--check-regression") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(a, "--tcp") == 0 && i + 1 < argc &&
               musa::parse_u64(argv[i + 1], &v) && v <= 65535) {
      tcp_port = static_cast<int>(v);
      ++i;
    } else if (std::strcmp(a, "--clients") == 0 && i + 1 < argc &&
               musa::parse_u64(argv[i + 1], &v) && v >= 1 && v <= 4096) {
      clients = static_cast<int>(v);
      ++i;
    } else if (std::strcmp(a, "--queries") == 0 && i + 1 < argc &&
               musa::parse_u64(argv[i + 1], &v) && v >= 1) {
      total_queries = v;
      ++i;
    } else if (std::strcmp(a, "--warm-instrs") == 0 && i + 1 < argc &&
               musa::parse_u64(argv[i + 1], &v) && v > 0) {
      pipeline.warm_instrs = v;
      ++i;
    } else if (std::strcmp(a, "--measure-instrs") == 0 && i + 1 < argc &&
               musa::parse_u64(argv[i + 1], &v) && v > 0) {
      pipeline.measure_instrs = v;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }
  if (socket_path.empty() && tcp_port < 0) return usage(argv[0]);

#ifdef _WIN32
  std::fprintf(stderr, "dse_loadtest: not supported on this platform\n");
  return 1;
#else
  const std::string app = musa::bench::bench_app();
  const std::vector<MachineConfig> configs = musa::bench::bench_space();
  const std::uint64_t fp = musa::core::pipeline_options_fingerprint(pipeline);
  const std::string fp_hex = musa::serve::fingerprint_hex(fp);

  // Handshake first: a fingerprint mismatch means the server was started
  // with different pipeline options and every byte-identity check below
  // would fail confusingly — reject it with a clear message instead.
  {
    const int fd = connect_server(socket_path, tcp_port);
    if (fd < 0) {
      std::fprintf(stderr, "dse_loadtest: cannot connect to server\n");
      return 1;
    }
    musa::sweep::LineChannel ch(fd);
    std::string line;
    if (!ch.send("{\"id\":\"hello\",\"op\":\"ping\"}") ||
        !ch.read_line(&line)) {
      std::fprintf(stderr, "dse_loadtest: ping failed\n");
      return 1;
    }
    musa::serve::JsonValue pong;
    std::string err;
    const musa::serve::JsonValue* got = nullptr;
    if (!musa::serve::parse_json(line, &pong, &err) ||
        (got = pong.find("fingerprint")) == nullptr) {
      std::fprintf(stderr, "dse_loadtest: bad pong: %s\n", line.c_str());
      return 1;
    }
    if (got->string != fp_hex) {
      std::fprintf(stderr,
                   "dse_loadtest: pipeline fingerprint mismatch "
                   "(server %s, local %s) — align --warm-instrs/"
                   "--measure-instrs with the server\n",
                   got->string.c_str(), fp_hex.c_str());
      return 1;
    }
  }

  // The reference answers: a local batch sweep over the same space with
  // the same options. Every served row must equal one of these verbatim.
  std::printf("dse_loadtest: computing %zu-point batch reference...\n",
              configs.size());
  std::unordered_map<std::string, std::string> expected;
  {
    SweepOptions sweep;
    sweep.verbose = false;
    sweep.apps = {app};
    sweep.configs = configs;
    Pipeline ref_pipeline(pipeline);
    DseEngine dse(ref_pipeline, "", sweep);
    dse.recompute();
    for (const auto& r : dse.results()) {
      std::string joined;
      for (const auto& cell : DseEngine::to_row(r)) {
        if (!joined.empty()) joined += ',';
        joined += cell;
      }
      expected[DseEngine::point_key(r.app, r.config)] = std::move(joined);
    }
  }

  std::printf("dse_loadtest: %d clients x %llu queries...\n", clients,
              static_cast<unsigned long long>(total_queries));
  std::vector<ClientResult> results(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < clients; ++c) {
    const std::uint64_t share =
        total_queries / static_cast<std::uint64_t>(clients) +
        (static_cast<std::uint64_t>(c) <
                 total_queries % static_cast<std::uint64_t>(clients)
             ? 1
             : 0);
    threads.emplace_back([&, c, share] {
      run_client(c, socket_path, tcp_port, app, configs, expected, fp_hex,
                 static_cast<int>(share), &results[static_cast<std::size_t>(c)]);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t wrong = 0, dropped = 0, busy_retries = 0;
  std::vector<std::uint64_t> latencies;
  for (const auto& r : results) {
    wrong += r.wrong;
    dropped += r.dropped;
    busy_retries += r.busy_retries;
    latencies.insert(latencies.end(), r.latency_us.begin(),
                     r.latency_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const auto quantile = [&latencies](double q) -> std::uint64_t {
    if (latencies.empty()) return 0;
    const auto at = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(at, latencies.size() - 1)];
  };
  const std::uint64_t p50 = quantile(0.50), p95 = quantile(0.95),
                      p99 = quantile(0.99);
  const double qps =
      wall_s > 0 ? static_cast<double>(latencies.size()) / wall_s : 0.0;

  std::printf(
      "dse_loadtest: %zu answered in %.2fs (%.1f q/s), %llu wrong, "
      "%llu dropped, %llu busy retries\n"
      "  latency p50 %llu us, p95 %llu us, p99 %llu us\n",
      latencies.size(), wall_s, qps,
      static_cast<unsigned long long>(wrong),
      static_cast<unsigned long long>(dropped),
      static_cast<unsigned long long>(busy_retries),
      static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p95),
      static_cast<unsigned long long>(p99));

  char entry[512];
  std::snprintf(entry, sizeof entry,
                "{\"clients\": %d, \"queries\": %llu, \"wrong\": %llu, "
                "\"dropped\": %llu, \"busy_retries\": %llu, "
                "\"wall_s\": %.4f, \"queries_per_s\": %.1f, "
                "\"p50_us\": %llu, \"p95_us\": %llu, \"p99_us\": %llu}",
                clients, static_cast<unsigned long long>(total_queries),
                static_cast<unsigned long long>(wrong),
                static_cast<unsigned long long>(dropped),
                static_cast<unsigned long long>(busy_retries), wall_s, qps,
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p95),
                static_cast<unsigned long long>(p99));
  if (!merge_serve_entry(out_path, entry)) {
    std::fprintf(stderr, "dse_loadtest: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("dse_loadtest: merged \"serve\" entry into %s\n",
              out_path.c_str());

  // Correctness is non-negotiable: a served row that differs from the
  // batch sweep, or a query the server never answered, fails the run.
  if (wrong > 0 || dropped > 0) {
    std::fprintf(stderr,
                 "FAIL: %llu wrong and %llu dropped replies — served "
                 "answers must be byte-identical to the batch sweep\n",
                 static_cast<unsigned long long>(wrong),
                 static_cast<unsigned long long>(dropped));
    return 1;
  }

  if (!baseline_path.empty()) {
    double base_p95 = 0.0;
    if (!parse_serve_baseline(read_text(baseline_path), "p95_us",
                              &base_p95)) {
      std::printf("regression check: baseline %s has no serve entry — "
                  "skipped\n",
                  baseline_path.c_str());
    } else {
      std::printf("regression check vs %s: p95 %.0f us -> %llu us\n",
                  baseline_path.c_str(), base_p95,
                  static_cast<unsigned long long>(p95));
      if (base_p95 > 0 && static_cast<double>(p95) > 5.0 * base_p95) {
        std::fprintf(stderr,
                     "FAIL: serve p95 latency regressed >5x "
                     "(%.0f us -> %llu us)\n",
                     base_p95, static_cast<unsigned long long>(p95));
        return 1;
      }
      std::printf("regression check passed\n");
    }
  }
  return 0;
#endif
}
