// Figure 1 reproduction: application runtime memory statistics — L1/L2/L3
// MPKI and giga-requests/s to main memory, for 32- and 64-core nodes at the
// Table I midpoint configuration. Paper values printed alongside.
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

namespace {
// Paper Fig. 1 values: {L1, L2, L3 MPKI, GMemReq/s} per app, 32c then 64c.
struct PaperRow {
  const char* app;
  double v32[4];
  double v64[4];
};
constexpr PaperRow kPaper[] = {
    {"hydro", {5.98, 1.78, 0.19, 0.02}, {6.00, 1.83, 0.19, 0.04}},
    {"spmz", {96.99, 22.26, 13.80, 0.48}, {96.99, 22.26, 13.80, 0.48}},
    {"btmz", {24.14, 1.86, 0.57, 0.11}, {24.17, 1.87, 0.68, 0.18}},
    {"spec3d", {43.32, 6.95, 4.81, 0.41}, {43.32, 6.95, 4.80, 0.41}},
    {"lulesh", {13.50, 4.61, 5.27, 0.51}, {13.44, 4.61, 5.58, 0.61}},
};
}  // namespace

int main() {
  using namespace musa;
  core::Pipeline pipeline;

  std::printf(
      "Fig. 1: application runtime statistics (MPKI, GMemReq/s)\n"
      "config: medium OoO, 32M:256K caches, 2.0 GHz, 128-bit, 4ch DDR4\n\n");

  for (int cores : {32, 64}) {
    std::printf("--- %d cores x 256 ranks ---\n", cores);
    TextTable t({"app", "L1-MPKI", "L2-MPKI", "L3-MPKI", "GReq/s",
                 "paper L1", "paper L2", "paper L3", "paper GReq/s"});
    int i = 0;
    for (const auto& app : apps::registry()) {
      core::MachineConfig config;
      config.cores = cores;
      const core::SimResult r = pipeline.run(app, config);
      const double* p = cores == 32 ? kPaper[i].v32 : kPaper[i].v64;
      t.row()
          .cell(app.name)
          .cell(r.mpki_l1, 2)
          .cell(r.mpki_l2, 2)
          .cell(r.mpki_l3, 2)
          .cell(r.gmem_req_s, 2)
          .cell(p[0], 2)
          .cell(p[1], 2)
          .cell(p[2], 2)
          .cell(p[3], 2);
      ++i;
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
