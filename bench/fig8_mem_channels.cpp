// Figure 8 reproduction: impact of DDR4 memory channel count (4 vs 8) on
// performance, power split and energy-to-solution.
//
// Paper headline: only LULESH (bandwidth-bound) gains — up to +60% at 64
// cores; doubling channels doubles DRAM power but costs only ~10% of node
// power; LULESH saves ~30% energy with 8 channels.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  std::printf("Fig. 8: memory channel sweep (normalised to 4 channels)\n\n");
  bench::print_dimension_figure(
      dse, "channels", {"4ch-DDR4-2333", "8ch-DDR4-2333"}, "4ch-DDR4-2333");
  return 0;
}
