// Figure 10 reproduction: Principal Component Analysis of the performance
// trade-offs between architectural parameters, for HYDRO and LULESH at
// 64 cores / 2 GHz (72 simulations each).
//
// Paper headline: for LULESH, PC0 is dominated by memory bandwidth evolving
// opposite to total cycles (cache size contributes moderately; OoO and SIMD
// not at all). For HYDRO, OoO capacity and cycles are the major, opposite
// PC0 contributors.
#include <cmath>
#include <cstdio>

#include "analysis/pca.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  const auto& results = dse.results();

  std::printf("Fig. 10: PCA of architectural parameters vs execution time\n");
  std::printf("(64-core, 2 GHz simulations; 72 observations per app)\n\n");

  for (const std::string app : {"hydro", "lulesh"}) {
    std::vector<std::vector<double>> obs;
    for (const auto& r : results) {
      if (r.app != app || r.config.cores != 64 || r.config.freq_ghz != 2.0)
        continue;
      core::MachineConfig c;
      c.cache_label = r.config.cache_label;
      obs.push_back({r.config.core.ooo_capability(),
                     static_cast<double>(r.config.mem_channels),
                     static_cast<double>(r.config.vector_bits),
                     static_cast<double>(c.cache_config(1).l3.size_bytes),
                     r.region_seconds});
    }
    const analysis::PcaResult p = analysis::pca(
        obs, {"OoO struct.", "Mem. BW", "FPU", "Cache size", "Exec. time"});

    std::printf("--- %s (%zu observations) ---\n", app.c_str(), obs.size());
    TextTable t({"variable", "PC0 loading", "PC1 loading"});
    for (std::size_t v = 0; v < p.variables.size(); ++v)
      t.row()
          .cell(p.variables[v])
          .cell(p.components[0][v], 3)
          .cell(p.components[1][v], 3);
    std::printf("%s", t.str().c_str());
    std::printf("PC0 explains %.2f%% variance, PC1 explains %.2f%%\n\n",
                100 * p.explained_variance[0], 100 * p.explained_variance[1]);
  }
  return 0;
}
