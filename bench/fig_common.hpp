// Shared plumbing for the figure-reproduction benches: DSE cache location
// and the three-panel (speedup / power split / energy) printer used by
// Figs 5–9, which all sweep one architectural dimension.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"

namespace musa::bench {

/// DSE result cache shared by all figure benches (override with
/// MUSA_DSE_CACHE; the sweep runs once and is reused afterwards).
inline std::string dse_cache_path() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at bench startup,
  // before any worker threads exist.
  if (const char* env = std::getenv("MUSA_DSE_CACHE")) return env;
  return "dse_cache.csv";
}

/// The fixed 24-point sub-sweep shared by sweep_bench and `run_dse
/// --bench`: one app (hydro) across 4 core presets x 3 frequencies x 2
/// channel counts. Small enough for CI, wide enough to exercise every
/// pipeline stage — the chaos leg injects faults into exactly this space.
inline std::vector<core::MachineConfig> bench_space() {
  std::vector<core::MachineConfig> configs;
  for (const auto& core : cpusim::core_presets())
    for (double freq : {1.5, 2.0, 2.5})
      for (int channels : {4, 8}) {
        core::MachineConfig c;
        c.core = core;
        c.freq_ghz = freq;
        c.mem_channels = channels;
        configs.push_back(c);
      }
  return configs;
}

inline const char* bench_app() { return "hydro"; }

/// Prints the paper's three panels for one swept dimension:
///   (a) speed-up vs the baseline value (time_base / time),
///   (b) power split (Core+L1 / L2+L3 / Memory) normalised to baseline total,
///   (c) energy-to-solution normalised to baseline.
inline void print_dimension_figure(core::DseEngine& dse,
                                   const std::string& dimension,
                                   const std::vector<std::string>& values,
                                   const std::string& baseline) {
  for (int cores : {32, 64}) {
    std::printf("--- %d cores x 256 ranks ---\n\n", cores);

    std::vector<std::string> head = {"app"};
    for (const auto& v : values) head.push_back(v);
    TextTable sp(head), en(head);
    for (const auto& app : apps::registry()) {
      sp.row().cell(app.name);
      en.row().cell(app.name);
      for (const auto& v : values) {
        const core::NormStat t = dse.normalized_ratio(
            app.name, cores, dimension, v, baseline, core::metrics::region_time);
        const core::NormStat e =
            dse.normalized_ratio(app.name, cores, dimension, v, baseline,
                                 core::metrics::region_energy);
        sp.cell(t.mean > 0 ? 1.0 / t.mean : 0.0, 2);
        en.cell(e.mean, 2);
      }
    }
    std::printf("(a) speed-up, normalised to %s:\n%s\n", baseline.c_str(),
                sp.str().c_str());

    std::vector<std::string> phead = {"app", "component"};
    for (const auto& v : values) phead.push_back(v);
    TextTable pw(phead);
    for (const auto& app : apps::registry()) {
      const char* comp[3] = {"Core+L1", "L2+L3", "Memory"};
      std::vector<core::DseEngine::PowerSplit> splits;
      for (const auto& v : values)
        splits.push_back(
            dse.power_split(app.name, cores, dimension, v, baseline));
      for (int c = 0; c < 3; ++c) {
        pw.row().cell(c == 0 ? app.name : "").cell(comp[c]);
        for (const auto& s : splits)
          pw.cell(c == 0 ? s.core_l1 : c == 1 ? s.l2_l3 : s.dram, 2);
      }
    }
    std::printf("(b) power split, normalised to %s total:\n%s\n",
                baseline.c_str(), pw.str().c_str());
    std::printf("(c) energy-to-solution, normalised to %s:\n%s\n",
                baseline.c_str(), en.str().c_str());
  }
}

}  // namespace musa::bench
