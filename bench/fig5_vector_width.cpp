// Figure 5 reproduction: impact of FPU vector width (128/256/512-bit) on
// performance, power split and energy-to-solution, averaged with the
// paper's pairwise normalisation over the rest of the design space.
//
// Paper headline: 512-bit gives +20% (HYDRO) to +75% (SP-MZ) speed-up,
// ~+40% average, except LULESH (short loops, no gain); ~+60% Core+L1 power;
// 256-bit saves 3–18% energy for all but LULESH.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  std::printf("Fig. 5: FPU vector width sweep (normalised to 128-bit)\n\n");
  bench::print_dimension_figure(dse, "vector", {"128b", "256b", "512b"},
                                "128b");
  return 0;
}
