// Figure 6 reproduction: impact of L2/L3 cache sizing (Table I presets) on
// performance, power split and energy-to-solution.
//
// Paper headline: 96M:1M gives ~11% average speed-up at 64 cores (HYDRO
// +21% thanks to the 4x L2-MPKI drop at 512 kB); L2+L3 power grows to ~20%
// of the node at 96MB; energy savings ~5% (64M:512K), ~1% (96M:1M).
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  std::printf("Fig. 6: cache size sweep (normalised to 32M:256K)\n\n");
  bench::print_dimension_figure(
      dse, "cache", {"32M:256K", "64M:512K", "96M:1M"}, "32M:256K");
  return 0;
}
