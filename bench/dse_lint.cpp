// Offline linter and static analyzer for the DSE tool-chain: checks machine
// configurations, presets, result caches and crash-recovery journals against
// the src/verify rule sets, and classifies whole design-space grids through
// the interval abstract domain — all without running a single simulation.
//
// Exits 0 when clean, 1 on any violation / disagreement / blown budget,
// 2 on usage errors or unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/journal.hpp"
#include "fig_common.hpp"
#include "verify/config_rules.hpp"
#include "verify/invariants.hpp"
#include "verify/space_analysis.hpp"

namespace {

using musa::verify::Violation;

constexpr const char* kUsage =
    R"(usage: dse_lint [MODE...] [OPTION...]

Pointwise lint modes (default: --presets --space + default cache if present):
  --presets        lint every built-in preset (cores, caches, DRAM techs)
  --space          lint the paper's 864-point grid and Table II configs
  --cache FILE     lint a result CSV: parse + config + result invariants
  --journal FILE   lint a sweep journal the same way
  --rules          print the rule catalogue and exit

Static space analysis (verify/space_analysis.hpp):
  --analyze        partition the grid into feasible/infeasible boxes; report
                   feasible fraction, per-rule kill counts, and per-dimension
                   feasibility intervals. O(boxes), never O(points).
  --agree          with --analyze: exhaustively cross-check the partition
                   against pointwise lint at every grid point (CI gate);
                   any disagreement exits 1
  --explain POINT  classify one machine-config id (e.g. "high|64M:512K|
                   2.0GHz|512b|8ch-DDR4-2666|64c") and print the violated
                   rule ids, one per line
  --extended       run the grid modes on the ~2.9M-point extended grid
                   (SpaceAxes::extended()) instead of the paper's 864
  --budget-s SEC   exit 1 if --analyze takes longer than SEC seconds
                   (CI perf tripwire for the O(boxes) claim)

Options:
  -q               suppress per-violation output (summary + exit status only)
  --help           print this message and exit
)";

int usage_error() {
  std::fputs(kUsage, stderr);
  return 2;
}

struct LintStats {
  std::size_t subjects = 0;
  std::vector<Violation> violations;
  bool quiet = false;

  void merge(std::vector<Violation> v, const char* where) {
    for (auto& violation : v) {
      if (!quiet)
        std::fprintf(stderr, "%s: %s\n", where, violation.str().c_str());
      violations.push_back(std::move(violation));
    }
  }
};

void lint_config(const musa::core::MachineConfig& config, const char* where,
                 LintStats& stats) {
  ++stats.subjects;
  stats.merge(musa::verify::check_machine(config), where);
}

void lint_presets(LintStats& stats) {
  using namespace musa;
  for (const auto& core : cpusim::core_presets()) {
    ++stats.subjects;
    stats.merge(verify::core_rules().check(core, core.label), "preset");
  }
  for (const auto& label : core::ConfigSpace::cache_labels())
    for (int cores : core::ConfigSpace::core_counts()) {
      core::MachineConfig c;
      c.cache_label = label;
      c.cores = cores;
      ++stats.subjects;
      stats.merge(verify::hierarchy_rules().check(
                      c.cache_config(cores),
                      label + "@" + std::to_string(cores) + "c"),
                  "preset");
    }
  for (auto tech :
       {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
        dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
        dramsim::MemTech::kHbm2}) {
    ++stats.subjects;
    const dramsim::DramTiming t = dramsim::timing_for(tech);
    stats.merge(verify::dram_rules().check(t, t.name), "preset");
  }
}

void lint_space(LintStats& stats) {
  using namespace musa;
  for (const auto& config : core::ConfigSpace::full_space())
    lint_config(config, "space", stats);
  for (const char* app : {"spmz", "lulesh"})
    for (const auto& [label, config] : core::ConfigSpace::unconventional(app))
      lint_config(config, ("table2 " + label).c_str(), stats);
}

/// Shared row lint for caches and journal entries: parse, then config rules,
/// then result invariants.
void lint_row(const std::vector<std::string>& row, const std::string& where,
              LintStats& stats) {
  ++stats.subjects;
  musa::core::SimResult r;
  try {
    r = musa::core::DseEngine::from_row(row);
  } catch (const musa::SimError& e) {
    stats.merge({{"row.parse", "row", e.what()}}, where.c_str());
    return;
  }
  stats.merge(musa::verify::check_machine(r.config), where.c_str());
  stats.merge(musa::verify::check_result(r), where.c_str());
}

int lint_cache(const std::string& path, LintStats& stats) {
  using namespace musa;
  CsvDoc doc;
  try {
    doc = CsvDoc::load(path);
  } catch (const SimError& e) {
    std::fprintf(stderr, "dse_lint: %s\n", e.what());
    return 2;
  }
  if (doc.header() != core::DseEngine::csv_header()) {
    stats.merge({{"cache.schema", path,
                  "header does not match the DSE result schema"}},
                path.c_str());
    return 0;
  }
  for (std::size_t i = 0; i < doc.rows().size(); ++i)
    lint_row(doc.rows()[i], path + ":" + std::to_string(i + 2), stats);
  return 0;
}

int lint_journal(const std::string& path, LintStats& stats) {
  using namespace musa;
  if (!CsvDoc::file_exists(path)) {
    std::fprintf(stderr, "dse_lint: no such journal: %s\n", path.c_str());
    return 2;
  }
  const ResultJournal::LoadResult lr =
      ResultJournal::read(path, core::DseEngine::csv_header());
  if (lr.schema_mismatch) {
    stats.merge({{"journal.schema", path,
                  "journal header does not match the DSE result schema"}},
                path.c_str());
    return 0;
  }
  if (lr.dropped > 0)
    stats.merge({{"journal.corrupt", path,
                  std::to_string(lr.dropped) +
                      " record(s) failed their checksum (crash damage)"}},
                path.c_str());
  // Quarantine (FAIL) rows: informational, not violations by themselves —
  // containment working as designed — but an unknown error class means a
  // writer/reader version skew and is flagged.
  if (!lr.fails.empty())
    std::printf("dse_lint: %s: %zu quarantined point(s)\n", path.c_str(),
                lr.fails.size());
  for (const auto& [key, fail] : lr.fails) {
    ++stats.subjects;
    const std::string cls = fail.error_class;
    if (musa::error_class_name(musa::error_class_from_name(cls)) != cls)
      stats.merge({{"journal.fail-class", key,
                    "unknown quarantine error class \"" + cls + "\""}},
                  path.c_str());
    if (!stats.quiet)
      std::printf("  FAIL %s: class=%s stage=%s attempts=%d %s\n",
                  key.c_str(), cls.c_str(),
                  fail.stage.empty() ? "unknown" : fail.stage.c_str(),
                  fail.attempts, fail.message.c_str());
  }
  // Lease records (elastic controller audit trail, DESIGN.md §7h): the
  // events themselves are informational, but an event name outside the
  // known vocabulary means writer/reader version skew — the same policy
  // as quarantine error classes, and the same exit-1 consequence.
  if (!lr.leases.empty())
    std::printf("dse_lint: %s: %zu lease record(s)\n", path.c_str(),
                lr.leases.size());
  for (const auto& lease : lr.leases) {
    ++stats.subjects;
    if (!known_lease_event(lease.event))
      stats.merge({{"journal.lease-event", lease.event,
                    "unknown lease event \"" + lease.event +
                        "\" (writer/reader version skew)"}},
                  path.c_str());
    if (!stats.quiet)
      std::printf("  LEASE %-10s chunk=%-3d worker=%-3d [%llu,%llu)%s%s\n",
                  lease.event.c_str(), lease.chunk, lease.worker,
                  static_cast<unsigned long long>(lease.begin),
                  static_cast<unsigned long long>(lease.end),
                  lease.detail.empty() ? "" : " ", lease.detail.c_str());
  }
  for (const auto& [key, row] : lr.entries)
    lint_row(row, path + "[" + key + "]", stats);
  return 0;
}

void print_rules() {
  using namespace musa;
  const auto dump = [](const char* set, const auto& rules) {
    std::printf("%s:\n", set);
    for (const auto& rule : rules.rules())
      std::printf("  %-26s %s\n", rule.id.c_str(), rule.summary.c_str());
  };
  dump("core (cpusim::CoreConfig)", verify::core_rules());
  dump("cache (cachesim::HierarchyConfig)", verify::hierarchy_rules());
  dump("dram (dramsim::DramTiming)", verify::dram_rules());
  dump("machine (core::MachineConfig)", verify::machine_rules());
  dump("result (core::SimResult)", verify::result_rules());
}

/// --analyze: box partition of the grid, printed rule-by-rule and
/// dimension-by-dimension. Returns the process exit code.
int run_analyze(const musa::core::SpaceAxes& axes, const char* space_name,
                bool agree, double budget_s, bool quiet) {
  using namespace musa;
  const verify::AnalysisReport report = verify::analyze(axes);

  std::printf("dse_lint --analyze: %s space\n", space_name);
  std::printf("  points    %llu total, %llu feasible (%.4f of space)\n",
              static_cast<unsigned long long>(report.total_points),
              static_cast<unsigned long long>(report.feasible_points),
              report.feasible_fraction());
  std::printf("  boxes     %zu leaves (%llu classified) in %.3f s\n",
              report.boxes.size(),
              static_cast<unsigned long long>(report.boxes_classified),
              report.wall_s);
  std::printf("  kill counts (points per first-violated rule):\n");
  for (const auto& [rule, count] : report.kill_counts)
    if (count > 0 || !quiet)
      std::printf("    %-26s %llu\n", rule.c_str(),
                  static_cast<unsigned long long>(count));
  std::printf("  per-dimension feasible values:\n");
  for (int d = 0; d < core::SpaceAxes::kDims; ++d) {
    std::string live, dead;
    for (int i = 0; i < axes.dim_size(d); ++i) {
      std::string& dst = report.dim_feasible[d][i] ? live : dead;
      if (!dst.empty()) dst += " ";
      dst += axes.value_name(d, i);
    }
    std::printf("    %-9s %s%s%s\n", axes.dim_name(d),
                live.empty() ? "(none)" : live.c_str(),
                dead.empty() ? "" : "  | infeasible: ",
                dead.c_str());
  }

  int rc = 0;
  if (budget_s > 0.0 && report.wall_s > budget_s) {
    std::fprintf(stderr,
                 "dse_lint: analysis took %.3f s, over the %.3f s budget\n",
                 report.wall_s, budget_s);
    rc = 1;
  }
  if (agree) {
    const verify::AgreementReport ag = verify::check_agreement(axes, report);
    std::printf("  agreement %llu point(s) cross-checked, %llu "
                "disagreement(s)\n",
                static_cast<unsigned long long>(ag.points),
                static_cast<unsigned long long>(ag.disagreements));
    for (const auto& ex : ag.examples)
      std::fprintf(stderr, "  disagree: %s\n", ex.c_str());
    if (ag.disagreements > 0) rc = 1;
  }
  return rc;
}

/// --explain POINT: pointwise classification of one config id, with the
/// violated rule ids on their own lines (machine-readable, diffable against
/// --analyze kill counts).
int run_explain(const std::string& point) {
  using namespace musa;
  core::MachineConfig config;
  try {
    config = core::MachineConfig::parse_id(point);
  } catch (const SimError& e) {
    std::fprintf(stderr, "dse_lint: --explain: %s\n", e.what());
    return 2;
  }
  const std::vector<Violation> violations = verify::check_machine(config);
  if (violations.empty()) {
    std::printf("%s: FEASIBLE (all %zu rules satisfied)\n",
                config.id().c_str(), verify::machine_rule_ids().size());
    return 0;
  }
  std::printf("%s: INFEASIBLE (%zu rule(s) violated)\n", config.id().c_str(),
              violations.size());
  for (const auto& v : violations)
    std::printf("  %-26s %s\n", v.rule.c_str(), v.detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool presets = false, space = false, rules = false, quiet = false;
  bool analyze = false, agree = false, extended = false;
  double budget_s = 0.0;
  std::string explain_point;
  std::vector<std::string> caches, journals;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--help") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (std::strcmp(arg, "--presets") == 0) {
      presets = true;
    } else if (std::strcmp(arg, "--space") == 0) {
      space = true;
    } else if (std::strcmp(arg, "--rules") == 0) {
      rules = true;
    } else if (std::strcmp(arg, "--analyze") == 0) {
      analyze = true;
    } else if (std::strcmp(arg, "--agree") == 0) {
      agree = true;
    } else if (std::strcmp(arg, "--extended") == 0) {
      extended = true;
    } else if (std::strcmp(arg, "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--cache") == 0 && a + 1 < argc) {
      caches.emplace_back(argv[++a]);
    } else if (std::strcmp(arg, "--journal") == 0 && a + 1 < argc) {
      journals.emplace_back(argv[++a]);
    } else if (std::strcmp(arg, "--explain") == 0 && a + 1 < argc) {
      explain_point = argv[++a];
    } else if (std::strcmp(arg, "--budget-s") == 0 && a + 1 < argc) {
      char* end = nullptr;
      budget_s = std::strtod(argv[++a], &end);
      if (end == argv[a] || *end != '\0' || budget_s <= 0.0)
        return usage_error();
    } else {
      return usage_error();
    }
  }
  if ((agree || extended || budget_s > 0.0) && !analyze &&
      explain_point.empty())
    return usage_error();

  try {
    if (rules) {
      print_rules();
      return 0;
    }
    if (!explain_point.empty()) return run_explain(explain_point);
    if (analyze) {
      const musa::core::SpaceAxes axes = extended
                                             ? musa::core::SpaceAxes::extended()
                                             : musa::core::SpaceAxes::paper();
      return run_analyze(axes, extended ? "extended" : "paper", agree,
                         budget_s, quiet);
    }
  } catch (const musa::SimError& e) {
    std::fprintf(stderr, "dse_lint: %s\n", e.what());
    return 2;
  }

  if (!presets && !space && caches.empty() && journals.empty()) {
    presets = space = true;
    const std::string default_cache = musa::bench::dse_cache_path();
    if (musa::CsvDoc::file_exists(default_cache))
      caches.push_back(default_cache);
  }

  LintStats stats;
  stats.quiet = quiet;
  try {
    if (presets) lint_presets(stats);
    if (space) lint_space(stats);
    for (const auto& path : caches)
      if (int rc = lint_cache(path, stats); rc != 0) return rc;
    for (const auto& path : journals)
      if (int rc = lint_journal(path, stats); rc != 0) return rc;
  } catch (const musa::SimError& e) {
    std::fprintf(stderr, "dse_lint: %s\n", e.what());
    return 2;
  }

  std::printf("dse_lint: %zu subject(s) checked, %zu violation(s)\n",
              stats.subjects, stats.violations.size());
  if (!stats.violations.empty()) {
    // Per-rule tally keyed on the stable rule ids — the same vocabulary
    // --analyze reports kill counts in, so the two outputs diff directly.
    std::map<std::string, std::size_t> by_rule;
    for (const auto& v : stats.violations) ++by_rule[v.rule];
    for (const auto& [rule, count] : by_rule)
      std::printf("  %-26s %zu\n", rule.c_str(), count);
  }
  return stats.violations.empty() ? 0 : 1;
}
