// Offline linter for the DSE tool-chain: checks machine configurations,
// presets, result caches and crash-recovery journals against the
// src/verify rule sets without running a single simulation.
//
// Usage: dse_lint [--presets] [--space] [--cache FILE] [--journal FILE]
//                 [--rules] [-q]
//   --presets       lint every built-in preset (cores, caches, DRAM techs)
//   --space         lint the paper's 864-point grid and Table II configs
//   --cache FILE    lint a result CSV: parse + config + result invariants
//   --journal FILE  lint a sweep journal the same way
//   --rules         print the rule catalogue and exit
//   -q              suppress per-violation output (exit status only)
//
// With no mode flags, lints presets + space + the default cache
// (MUSA_DSE_CACHE or ./dse_cache.csv) when it exists. Exits 0 when clean,
// 1 on any violation, 2 on usage or unreadable input.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/journal.hpp"
#include "fig_common.hpp"
#include "verify/config_rules.hpp"
#include "verify/invariants.hpp"

namespace {

using musa::verify::Violation;

struct LintStats {
  std::size_t subjects = 0;
  std::vector<Violation> violations;
  bool quiet = false;

  void merge(std::vector<Violation> v, const char* where) {
    for (auto& violation : v) {
      if (!quiet)
        std::fprintf(stderr, "%s: %s\n", where, violation.str().c_str());
      violations.push_back(std::move(violation));
    }
  }
};

void lint_config(const musa::core::MachineConfig& config, const char* where,
                 LintStats& stats) {
  ++stats.subjects;
  stats.merge(musa::verify::check_machine(config), where);
}

void lint_presets(LintStats& stats) {
  using namespace musa;
  for (const auto& core : cpusim::core_presets()) {
    ++stats.subjects;
    stats.merge(verify::core_rules().check(core, core.label), "preset");
  }
  for (const auto& label : core::ConfigSpace::cache_labels())
    for (int cores : core::ConfigSpace::core_counts()) {
      core::MachineConfig c;
      c.cache_label = label;
      c.cores = cores;
      ++stats.subjects;
      stats.merge(verify::hierarchy_rules().check(
                      c.cache_config(cores),
                      label + "@" + std::to_string(cores) + "c"),
                  "preset");
    }
  for (auto tech :
       {dramsim::MemTech::kDdr4_2333, dramsim::MemTech::kDdr4_2666,
        dramsim::MemTech::kLpddr4_3200, dramsim::MemTech::kWideIo2,
        dramsim::MemTech::kHbm2}) {
    ++stats.subjects;
    const dramsim::DramTiming t = dramsim::timing_for(tech);
    stats.merge(verify::dram_rules().check(t, t.name), "preset");
  }
}

void lint_space(LintStats& stats) {
  using namespace musa;
  for (const auto& config : core::ConfigSpace::full_space())
    lint_config(config, "space", stats);
  for (const char* app : {"spmz", "lulesh"})
    for (const auto& [label, config] : core::ConfigSpace::unconventional(app))
      lint_config(config, ("table2 " + label).c_str(), stats);
}

/// Shared row lint for caches and journal entries: parse, then config rules,
/// then result invariants.
void lint_row(const std::vector<std::string>& row, const std::string& where,
              LintStats& stats) {
  ++stats.subjects;
  musa::core::SimResult r;
  try {
    r = musa::core::DseEngine::from_row(row);
  } catch (const musa::SimError& e) {
    stats.merge({{"row.parse", "row", e.what()}}, where.c_str());
    return;
  }
  stats.merge(musa::verify::check_machine(r.config), where.c_str());
  stats.merge(musa::verify::check_result(r), where.c_str());
}

int lint_cache(const std::string& path, LintStats& stats) {
  using namespace musa;
  CsvDoc doc;
  try {
    doc = CsvDoc::load(path);
  } catch (const SimError& e) {
    std::fprintf(stderr, "dse_lint: %s\n", e.what());
    return 2;
  }
  if (doc.header() != core::DseEngine::csv_header()) {
    stats.merge({{"cache.schema", path,
                  "header does not match the DSE result schema"}},
                path.c_str());
    return 0;
  }
  for (std::size_t i = 0; i < doc.rows().size(); ++i)
    lint_row(doc.rows()[i], path + ":" + std::to_string(i + 2), stats);
  return 0;
}

int lint_journal(const std::string& path, LintStats& stats) {
  using namespace musa;
  if (!CsvDoc::file_exists(path)) {
    std::fprintf(stderr, "dse_lint: no such journal: %s\n", path.c_str());
    return 2;
  }
  const ResultJournal::LoadResult lr =
      ResultJournal::read(path, core::DseEngine::csv_header());
  if (lr.schema_mismatch) {
    stats.merge({{"journal.schema", path,
                  "journal header does not match the DSE result schema"}},
                path.c_str());
    return 0;
  }
  if (lr.dropped > 0)
    stats.merge({{"journal.corrupt", path,
                  std::to_string(lr.dropped) +
                      " record(s) failed their checksum (crash damage)"}},
                path.c_str());
  // Quarantine (FAIL) rows: informational, not violations by themselves —
  // containment working as designed — but an unknown error class means a
  // writer/reader version skew and is flagged.
  if (!lr.fails.empty())
    std::printf("dse_lint: %s: %zu quarantined point(s)\n", path.c_str(),
                lr.fails.size());
  for (const auto& [key, fail] : lr.fails) {
    ++stats.subjects;
    const std::string cls = fail.error_class;
    if (musa::error_class_name(musa::error_class_from_name(cls)) != cls)
      stats.merge({{"journal.fail-class", key,
                    "unknown quarantine error class \"" + cls + "\""}},
                  path.c_str());
    if (!stats.quiet)
      std::printf("  FAIL %s: class=%s stage=%s attempts=%d %s\n",
                  key.c_str(), cls.c_str(),
                  fail.stage.empty() ? "unknown" : fail.stage.c_str(),
                  fail.attempts, fail.message.c_str());
  }
  for (const auto& [key, row] : lr.entries)
    lint_row(row, path + "[" + key + "]", stats);
  return 0;
}

void print_rules() {
  using namespace musa;
  const auto dump = [](const char* set, const auto& rules) {
    std::printf("%s:\n", set);
    for (const auto& rule : rules.rules())
      std::printf("  %-26s %s\n", rule.id.c_str(), rule.summary.c_str());
  };
  dump("core (cpusim::CoreConfig)", verify::core_rules());
  dump("cache (cachesim::HierarchyConfig)", verify::hierarchy_rules());
  dump("dram (dramsim::DramTiming)", verify::dram_rules());
  dump("machine (core::MachineConfig)", verify::machine_rules());
  dump("result (core::SimResult)", verify::result_rules());
}

}  // namespace

int main(int argc, char** argv) {
  bool presets = false, space = false, rules = false, quiet = false;
  std::vector<std::string> caches, journals;
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    if (std::strcmp(arg, "--presets") == 0) {
      presets = true;
    } else if (std::strcmp(arg, "--space") == 0) {
      space = true;
    } else if (std::strcmp(arg, "--rules") == 0) {
      rules = true;
    } else if (std::strcmp(arg, "-q") == 0) {
      quiet = true;
    } else if (std::strcmp(arg, "--cache") == 0 && a + 1 < argc) {
      caches.emplace_back(argv[++a]);
    } else if (std::strcmp(arg, "--journal") == 0 && a + 1 < argc) {
      journals.emplace_back(argv[++a]);
    } else {
      std::fprintf(stderr,
                   "usage: dse_lint [--presets] [--space] [--cache FILE] "
                   "[--journal FILE] [--rules] [-q]\n");
      return 2;
    }
  }
  if (rules) {
    print_rules();
    return 0;
  }
  if (!presets && !space && caches.empty() && journals.empty()) {
    presets = space = true;
    const std::string default_cache = musa::bench::dse_cache_path();
    if (musa::CsvDoc::file_exists(default_cache))
      caches.push_back(default_cache);
  }

  LintStats stats;
  stats.quiet = quiet;
  try {
    if (presets) lint_presets(stats);
    if (space) lint_space(stats);
    for (const auto& path : caches)
      if (int rc = lint_cache(path, stats); rc != 0) return rc;
    for (const auto& path : journals)
      if (int rc = lint_journal(path, stats); rc != 0) return rc;
  } catch (const musa::SimError& e) {
    std::fprintf(stderr, "dse_lint: %s\n", e.what());
    return 2;
  }

  std::printf("dse_lint: %zu subject(s) checked, %zu violation(s)\n",
              stats.subjects, stats.violations.size());
  return stats.violations.empty() ? 0 : 1;
}
