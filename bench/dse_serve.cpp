// DSE-as-a-service daemon: serves point and sub-space design-space queries
// from a persistent process that keeps the stage memo and the
// journal-backed result cache warm across clients (DESIGN.md §7i).
//
// Usage:
//   dse_serve [--socket PATH] [--tcp PORT] [--cache PATH] [--threads N]
//             [--max-queue-points N] [--max-clients N]
//             [--warm-instrs N] [--measure-instrs N]
//             [--metrics PATH] [--allow-shutdown] [--quiet]
//
// Defaults: AF_UNIX socket "musa_serve.sock", cache "serve_cache.csv", no
// TCP listener (pass --tcp 0 for an ephemeral loopback port — the bound
// port is printed). The daemon runs until SIGINT/SIGTERM (or a client
// shutdown op when --allow-shutdown), then drains, writes the metrics
// snapshot — including the serve.request.us latency histogram with its
// p50/p95/p99 — to the --metrics path, and exits 0.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/parse.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<bool> g_signalled{false};

void on_signal(int) { g_signalled.store(true); }

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--tcp PORT] [--cache PATH] [--threads N]\n"
      "          [--max-queue-points N] [--max-clients N]\n"
      "          [--warm-instrs N] [--measure-instrs N]\n"
      "          [--metrics PATH] [--allow-shutdown] [--quiet]\n",
      argv0);
  return 2;
}

bool arg_u64(int argc, char** argv, int* i, std::uint64_t* out) {
  if (*i + 1 >= argc) return false;
  return musa::parse_u64(argv[++*i], out);
}

}  // namespace

int main(int argc, char** argv) {
  musa::serve::ServeOptions opts;
  opts.socket_path = "musa_serve.sock";
  opts.verbose = true;
  std::string metrics_path = "serve_metrics.json";
  bool tcp_set = false;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    std::uint64_t v = 0;
    if (std::strcmp(a, "--socket") == 0 && i + 1 < argc) {
      opts.socket_path = argv[++i];
    } else if (std::strcmp(a, "--cache") == 0 && i + 1 < argc) {
      opts.cache_path = argv[++i];
    } else if (std::strcmp(a, "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(a, "--tcp") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v > 65535) return usage(argv[0]);
      opts.tcp_port = static_cast<int>(v);
      tcp_set = true;
    } else if (std::strcmp(a, "--threads") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v > 1024) return usage(argv[0]);
      opts.threads = static_cast<int>(v);
    } else if (std::strcmp(a, "--max-queue-points") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v == 0) return usage(argv[0]);
      opts.max_queue_points = v;
    } else if (std::strcmp(a, "--max-clients") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v == 0 || v > 10000)
        return usage(argv[0]);
      opts.max_clients = static_cast<int>(v);
    } else if (std::strcmp(a, "--warm-instrs") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v == 0) return usage(argv[0]);
      opts.pipeline.warm_instrs = v;
    } else if (std::strcmp(a, "--measure-instrs") == 0) {
      if (!arg_u64(argc, argv, &i, &v) || v == 0) return usage(argv[0]);
      opts.pipeline.measure_instrs = v;
    } else if (std::strcmp(a, "--allow-shutdown") == 0) {
      opts.allow_shutdown = true;
    } else if (std::strcmp(a, "--quiet") == 0) {
      opts.verbose = false;
    } else {
      return usage(argv[0]);
    }
  }
  if (!musa::serve::DseServer::supported()) {
    std::fprintf(stderr, "dse_serve: not supported on this platform\n");
    return 1;
  }

  musa::serve::DseServer server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dse_serve: %s\n", e.what());
    return 1;
  }
  if (!opts.socket_path.empty())
    std::printf("dse_serve: listening on %s\n", opts.socket_path.c_str());
  if (tcp_set)
    std::printf("dse_serve: listening on 127.0.0.1:%d\n", server.tcp_port());
  std::printf("dse_serve: cache %s (fingerprint %016llx)\n",
              opts.cache_path.c_str(),
              static_cast<unsigned long long>(server.fingerprint()));
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  // Poll rather than block: the signal handler only flips an atomic, which
  // is all it can safely do.
  while (!g_signalled.load() && !server.stopping())
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();

  const musa::serve::ServeStats s = server.stats();
  std::printf(
      "dse_serve: %llu requests (%llu done, %llu busy, %llu errors), "
      "%llu computed, %llu cache hits, %llu dedup, %llu failed\n",
      static_cast<unsigned long long>(s.requests),
      static_cast<unsigned long long>(s.done),
      static_cast<unsigned long long>(s.busy),
      static_cast<unsigned long long>(s.errors),
      static_cast<unsigned long long>(s.computed),
      static_cast<unsigned long long>(s.cache_hits),
      static_cast<unsigned long long>(s.dedup_hits),
      static_cast<unsigned long long>(s.failed));
  try {
    musa::obs::write_metrics_json(metrics_path,
                                  musa::obs::MetricRegistry::global()
                                      .snapshot());
    std::printf("dse_serve: wrote %s\n", metrics_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dse_serve: cannot write metrics: %s\n", e.what());
  }
  return 0;
}
