// Node power & area report: McPAT-style breakdown of the four Table I core
// classes at three vector widths — power per component, silicon area, and
// the leakage share that makes idle cores expensive (the paper's §VII
// co-design conclusion).
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "powersim/power.hpp"

int main() {
  using namespace musa;

  std::printf(
      "Node power & area report (64 cores, 2 GHz, 32M:256K, 4ch DDR4)\n\n");

  TextTable t({"core", "vector", "core mm2", "L2+L3 mm2", "leak W/core",
               "node W (btmz)", "node W (idle)"});
  core::Pipeline pipeline;
  const auto& app = apps::find_app("btmz");
  for (const auto& preset : cpusim::core_presets()) {
    for (int vec : {128, 512}) {
      core::MachineConfig config;
      config.core = preset;
      config.vector_bits = vec;
      config.cores = 64;
      const core::SimResult r = pipeline.run(app, config);

      const powersim::CorePower cp(preset, vec, 2.0);
      const powersim::CachePower gp(config.cache_config(64), 2.0);
      powersim::NodeActivity idle;
      idle.total_cores = 64;
      const double idle_w =
          cp.evaluate_w(idle) + gp.evaluate_w(idle);

      t.row()
          .cell(preset.label)
          .cell(std::to_string(vec) + "b")
          .cell(cp.core_area_mm2(), 1)
          .cell(gp.area_mm2(64), 0)
          .cell(cp.core_leakage_w(), 2)
          .cell(r.node_w, 1)
          .cell(idle_w, 1);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "The idle column is pure leakage: a node that schedules poorly (few\n"
      "busy cores) still burns that floor — the paper's argument that\n"
      "parallel efficiency is an energy problem, not just a speed one.\n");
  return 0;
}
