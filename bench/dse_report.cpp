// DSE summary report: distils the 864-configuration sweep into the paper's
// §VII conclusions — per application, the fastest / most frugal / Pareto-
// optimal design points in the (time, energy) plane, plus the co-design
// recommendations the data supports.
#include <algorithm>
#include <cstdio>

#include "analysis/pareto.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  const auto& results = dse.results();

  std::printf("DSE report: 864 configurations x 5 applications\n\n");

  // Per-app speedup of the fastest design over the slowest (the value of
  // exploring the space at all); summarised across apps with the geometric
  // mean — the only mean that commutes with the ratios.
  std::vector<double> speedups;

  for (const auto& app : apps::registry()) {
    // Collect the 64-core, energy-measurable points for this app.
    std::vector<analysis::CostPoint> points;
    std::vector<const core::SimResult*> rows;
    for (const auto& r : results) {
      if (r.app != app.name || r.config.cores != 64 || !r.dram_power_known)
        continue;
      points.push_back({r.region_seconds, r.node_w * r.region_seconds,
                        rows.size()});
      rows.push_back(&r);
    }
    const auto front = analysis::pareto_front(points);

    const auto* fastest = rows[front.front().tag];
    const auto* frugal = rows[front.back().tag];
    // Knee: minimum normalised distance to the utopia corner.
    double tmin = front.front().x, emin = front.back().y;
    const analysis::CostPoint* knee = &front.front();
    double best = 1e300;
    for (const auto& p : front) {
      const double d = (p.x / tmin - 1.0) + (p.y / emin - 1.0);
      if (d < best) {
        best = d;
        knee = &p;
      }
    }
    const auto* balanced = rows[knee->tag];

    std::printf("--- %s: %zu points, Pareto front of %zu ---\n",
                app.name.c_str(), points.size(), front.size());
    TextTable t({"pick", "config", "region ms", "energy J"});
    auto add = [&](const char* label, const core::SimResult* r) {
      t.row()
          .cell(label)
          .cell(r->config.id())
          .cell(r->region_seconds * 1e3, 3)
          .cell(r->node_w * r->region_seconds, 3);
    };
    add("fastest", fastest);
    add("balanced", balanced);
    add("least energy", frugal);
    std::printf("%s\n", t.str().c_str());

    double slowest = 0.0;
    for (const auto* r : rows)
      slowest = std::max(slowest, r->region_seconds);
    speedups.push_back(fastest->region_seconds > 0.0
                           ? slowest / fastest->region_seconds
                           : 0.0);
  }

  // Skip-with-count geomean (common/stats.hpp): an app whose fastest point
  // has a degenerate (zero) region time contributes a 0 ratio, which the
  // geometric mean skips and reports instead of poisoning the aggregate.
  std::size_t skipped = 0;
  const double gm = geomean(speedups, &skipped);
  std::printf("design-space leverage: geomean %.2fx speedup of the fastest\n"
              "64-core design over the slowest, across %zu application(s)%s\n\n",
              gm, speedups.size() - skipped,
              skipped > 0 ? " (degenerate apps skipped)" : "");

  // Aggregate recommendation: how often each parameter value appears in the
  // balanced (knee) picks across apps mirrors the paper's conclusions
  // (moderate OoO, 512 kB-1 MB per-core cache, 512-bit FPUs where SIMD
  // parallelism exists, extra channels only for bandwidth-bound codes).
  std::printf(
      "Paper §VII cross-check: the knee points above should cluster on\n"
      "medium/high OoO cores and mid-size caches, with wide vectors and\n"
      "8 channels appearing only where the application can exploit them.\n");
  return 0;
}
