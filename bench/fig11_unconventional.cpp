// Table II + Figure 11 reproduction: application-specific unconventional
// configurations — SP-MZ with 1024/2048-bit vectors (Vector+/Vector++) and
// LULESH with 16-channel DDR4 / HBM2 and narrow 64-bit FPUs (MEM+/MEM++),
// all at 64 cores / 2 GHz, compared against the best conventional point.
//
// Paper headline: Vector+ +13% performance at similar power; Vector++ +43%
// performance but 3.14x power and ~2.5x energy. MEM+ cuts energy 47% while
// gaining 7% performance; MEM++ (HBM) reaches 1.30x speed-up (no energy
// number — no public HBM power data; we follow the same convention).
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/config_space.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;

  std::printf("Table II / Fig. 11: application-specific configurations\n\n");

  for (const std::string app_name : {"spmz", "lulesh"}) {
    const apps::AppModel& app = apps::find_app(app_name);
    const auto rows = core::ConfigSpace::unconventional(app_name);

    std::printf("--- %s ---\n", app_name.c_str());
    TextTable cfg({"Label", "Core OoO", "FP Unit", "Cache(L3:L2)", "Memory"});
    for (const auto& [label, config] : rows)
      cfg.row()
          .cell(label)
          .cell(config.core.label)
          .cell(std::to_string(config.vector_bits) + "-bit")
          .cell(config.cache_label)
          .cell(std::to_string(config.mem_channels) + "-ch " +
                dramsim::mem_tech_name(config.mem_tech));
    std::printf("%s\n", cfg.str().c_str());

    core::SimResult base;
    TextTable t({"Label", "Performance", "Power", "Energy"});
    bool first = true;
    for (const auto& [label, config] : rows) {
      const core::SimResult r = pipeline.run(app, config);
      if (first) base = r;
      const double perf = base.region_seconds / r.region_seconds;
      const double power = r.node_w / base.node_w;
      t.row().cell(label).cell(perf, 2);
      if (r.dram_power_known) {
        t.cell(power, 2);
        t.cell((r.node_w * r.region_seconds) /
                   (base.node_w * base.region_seconds),
               2);
      } else {
        t.cell("n/a (HBM)").cell("n/a (HBM)");
      }
      first = false;
    }
    std::printf("%s\n", t.str().c_str());
  }
  return 0;
}
