// Figure 9 reproduction: impact of CPU clock frequency (1.5–3.0 GHz, with
// 22 nm voltage scaling) on performance, power split and energy.
//
// Paper headline: near-linear performance scaling for all codes except
// HYDRO (runtime dispatch bottleneck above 2.5 GHz); 2x frequency costs
// ~2.5x node power.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  std::printf("Fig. 9: frequency sweep (normalised to 1.5 GHz)\n\n");
  bench::print_dimension_figure(
      dse, "freq", {"1.5GHz", "2.0GHz", "2.5GHz", "3.0GHz"}, "1.5GHz");
  return 0;
}
