// Figures 3 & 4 reproduction (Paraver-style timelines, ASCII rendition):
//   Fig. 3 — Specfem3D task occupancy on a 64-core node: most CPUs idle
//            because the region has too few tasks.
//   Fig. 4 — LULESH MPI phases across ranks: rank-level load imbalance fills
//            barriers/collectives with wait time.
#include <cstdio>

#include "analysis/timeline.hpp"
#include "apps/apps.hpp"
#include "core/pipeline.hpp"
#include "verify/invariants.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;

  // --- Fig. 3: Specfem3D task timeline on 64 cores ---
  {
    const apps::AppModel& app = apps::find_app("spec3d");
    cpusim::NodeResult node;
    pipeline.run_burst(app, 64, /*ranks=*/1, &node, nullptr);
    verify::raise_if(verify::check_core_timeline(node.timeline, 64,
                                                 node.seconds, app.name));
    std::printf(
        "Fig. 3: Specfem3D task execution on a 64-core node\n"
        "('#' = task running, '.' = idle; low task parallelism leaves most "
        "CPUs idle)\n\n");
    std::printf("%s\n",
                analysis::render_core_timeline(node.timeline, 64,
                                               node.seconds)
                    .c_str());
  }

  // --- Fig. 4: LULESH MPI timeline across ranks ---
  {
    const apps::AppModel& app = apps::find_app("lulesh");
    netsim::ReplayResult replay;
    pipeline.run_burst(app, 64, /*ranks=*/64, nullptr, &replay);
    verify::raise_if(verify::check_rank_timeline(replay.timeline, 64,
                                                 replay.total_seconds,
                                                 app.name));
    std::printf(
        "Fig. 4: LULESH compute/MPI phases per rank (64 of 256 ranks "
        "rendered)\n"
        "('C' = compute, 'p' = point-to-point, 'B' = barrier/collective "
        "wait)\n\n");
    std::printf("%s\n", analysis::render_rank_timeline(
                            replay.timeline, 64, replay.total_seconds)
                            .c_str());
    std::printf(
        "MPI cost split: p2p transfer is minimal; imbalance-driven waits at "
        "collectives dominate (paper §V-A):\n");
    double p2p = 0, coll = 0;
    for (const auto& r : replay.ranks) {
      p2p += r.p2p_s;
      coll += r.collective_s;
    }
    std::printf("  total p2p time: %.3f s, total collective wait: %.3f s\n",
                p2p, coll);
  }
  return 0;
}
