// Figure 7 reproduction: impact of core out-of-order capability (Table I
// presets) on performance, power split and energy-to-solution.
//
// Paper headline: low-end cores are ~35% slower (60% for Specfem3D);
// high/medium lose <5% (except Specfem3D) while consuming 18–20% less
// power than aggressive — the best perf/energy design points.
#include <cstdio>

#include "fig_common.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());
  std::printf("Fig. 7: core OoO capability sweep (normalised to aggressive)\n\n");
  bench::print_dimension_figure(
      dse, "core", {"aggressive", "lowend", "high", "medium"}, "aggressive");
  return 0;
}
