// Benchmarks the cross-point stage memoization (core/stage_memo.hpp) on a
// fixed 24-point sub-sweep and writes the measurements to BENCH_sweep.json,
// which CI uploads as an artifact so memo regressions show up as a number,
// not a feeling.
//
// The 24 points are one app (hydro) across 4 core presets x 3 frequencies
// x 2 channel counts — the shape the memo is built for: every point shares
// the trace-generation, burst, stream, and warm-up work, so the memoized
// sweep should pay the measured detailed run per point and little else.
//
// The bench runs the sweep three times — memo off, memo on, memo on with
// the span tracer armed — checks the result sets are byte-identical (the
// memo's core contract; tracing must never perturb results either), and
// reports wall time, points/s, the per-stage and worker-occupancy
// breakdown, the memo hit rates, and the tracing overhead ratio (the
// DESIGN.md §7e budget: armed tracing within ~2% of untraced).
//
// Usage: sweep_bench [output.json]   (default BENCH_sweep.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "fig_common.hpp"
#include "obs/span.hpp"

namespace {

using musa::core::DseEngine;
using musa::core::MachineConfig;
using musa::core::MemoStats;
using musa::core::Pipeline;
using musa::core::StageTimes;
using musa::core::SweepOptions;
using musa::core::SweepReport;

struct Run {
  double wall_s = 0.0;
  SweepReport report;
  std::vector<std::string> rows;  // one to_row per point, plan order
};

/// Best-of-N timing: each repetition recomputes the sweep from scratch (a
/// fresh Pipeline and memo every time), and the fastest repetition is
/// reported — the standard way to keep scheduler noise out of the ratio.
constexpr int kReps = 3;

Run run_sweep(bool memoize, bool trace = false) {
  SweepOptions opts;
  opts.verbose = false;
  opts.memoize = memoize;
  opts.apps = {musa::bench::bench_app()};
  opts.configs = musa::bench::bench_space();

  Run r;
  for (int rep = 0; rep < kReps; ++rep) {
    if (trace) musa::obs::Tracer::install();  // re-install clears the ring
    Pipeline pipeline;
    // No cache path: pure compute, no journal fsyncs in the timing.
    DseEngine dse(pipeline, "", opts);
    const auto t0 = std::chrono::steady_clock::now();
    dse.recompute();
    const auto t1 = std::chrono::steady_clock::now();

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    if (rep > 0 && wall_s >= r.wall_s) continue;
    r.wall_s = wall_s;
    r.report = dse.report();
    r.rows.clear();
    for (const auto& res : dse.results()) {
      std::string joined;
      for (const auto& cell : DseEngine::to_row(res)) {
        if (!joined.empty()) joined += ',';
        joined += cell;
      }
      r.rows.push_back(std::move(joined));
    }
  }
  return r;
}

void json_stages(std::FILE* f, const StageTimes& st) {
  std::fprintf(f,
               "{\"burst_s\": %.6f, \"kernel_s\": %.6f, \"replay_s\": %.6f, "
               "\"power_s\": %.6f}",
               st.burst_s, st.kernel_s, st.replay_s, st.power_s);
}

void json_run(std::FILE* f, const char* name, const Run& r) {
  const double pps =
      r.wall_s > 0 ? static_cast<double>(r.report.computed) / r.wall_s : 0.0;
  // Worker occupancy: stage compute time over workers × compute-phase wall.
  // The gap is queue idle + journal/merge time — the tail the trace view
  // makes visible per worker.
  const double occupancy =
      r.report.workers > 0 && r.report.wall_s > 0.0
          ? r.report.stages.total_s() /
                (r.report.wall_s * static_cast<double>(r.report.workers))
          : 0.0;
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"wall_s\": %.4f,\n"
               "    \"points\": %llu,\n"
               "    \"points_per_s\": %.3f,\n"
               "    \"workers\": %d,\n"
               "    \"occupancy\": %.4f,\n"
               "    \"stages\": ",
               name, r.wall_s,
               static_cast<unsigned long long>(r.report.computed), pps,
               r.report.workers, occupancy);
  json_stages(f, r.report.stages);
  const MemoStats& m = r.report.memo;
  std::fprintf(
      f,
      ",\n    \"memo_hit_rate\": {\"burst\": %.4f, \"region\": %.4f, "
      "\"trace\": %.4f, \"stream\": %.4f, \"warm\": %.4f, "
      "\"perfect\": %.4f, \"overall\": %.4f}\n  }",
      MemoStats::rate(m.burst_hits, m.burst_misses),
      MemoStats::rate(m.region_hits, m.region_misses),
      MemoStats::rate(m.trace_hits, m.trace_misses),
      MemoStats::rate(m.stream_hits, m.stream_misses),
      MemoStats::rate(m.warm_hits, m.warm_misses),
      MemoStats::rate(m.perfect_hits, m.perfect_misses),
      MemoStats::rate(m.total_hits(), m.total_misses()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  std::printf("sweep_bench: fixed 24-point sweep (hydro, 4 presets x 3 "
              "freqs x 2 channel counts)\n");
  const Run plain = run_sweep(/*memoize=*/false);
  std::printf("  no-memo: %6.2fs  (%.2f points/s)\n", plain.wall_s,
              plain.report.computed / plain.wall_s);
  const Run memo = run_sweep(/*memoize=*/true);
  std::printf("  memo:    %6.2fs  (%.2f points/s)\n", memo.wall_s,
              memo.report.computed / memo.wall_s);
  const Run traced = run_sweep(/*memoize=*/true, /*trace=*/true);
  const std::size_t trace_events = musa::obs::Tracer::drain().size();
  musa::obs::Tracer::shutdown();
  std::printf("  traced:  %6.2fs  (%.2f points/s, %zu events)\n",
              traced.wall_s, traced.report.computed / traced.wall_s,
              trace_events);

  // The memo is only a win if it is *free* in results: identical bytes.
  // The tracer must be invisible in results too — it only observes.
  if (plain.rows != memo.rows || memo.rows != traced.rows) {
    std::fprintf(stderr,
                 "FAIL: sweep results differ across memo/tracing modes — "
                 "staleness or observer-effect bug\n");
    return 1;
  }
  const double speedup = memo.wall_s > 0 ? plain.wall_s / memo.wall_s : 0.0;
  const double trace_overhead =
      memo.wall_s > 0 ? traced.wall_s / memo.wall_s : 0.0;
  std::printf("  results byte-identical; speedup %.2fx, "
              "tracing overhead %.3fx\n",
              speedup, trace_overhead);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  json_run(f, "no_memo", plain);
  std::fprintf(f, ",\n");
  json_run(f, "memo", memo);
  std::fprintf(f, ",\n");
  json_run(f, "traced", traced);
  std::fprintf(f,
               ",\n  \"speedup\": %.3f,\n  \"trace_overhead\": %.4f,\n"
               "  \"trace_events\": %zu,\n  \"identical\": true\n}\n",
               speedup, trace_overhead, trace_events);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
