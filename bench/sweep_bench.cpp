// Benchmarks the cross-point stage memoization (core/stage_memo.hpp) on a
// fixed 24-point sub-sweep and writes the measurements to BENCH_sweep.json,
// which CI uploads as an artifact so memo regressions show up as a number,
// not a feeling.
//
// The 24 points are one app (hydro) across 4 core presets x 3 frequencies
// x 2 channel counts — the shape the memo is built for: every point shares
// the trace-generation, burst, stream, and warm-up work, so the memoized
// sweep should pay the measured detailed run per point and little else.
//
// The bench runs the sweep twice (memo off, then on), checks the two result
// sets are byte-identical (the memo's core contract), and reports wall
// time, points/s, the per-stage breakdown, and the memo hit rates.
//
// Usage: sweep_bench [output.json]   (default BENCH_sweep.json)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "fig_common.hpp"

namespace {

using musa::core::DseEngine;
using musa::core::MachineConfig;
using musa::core::MemoStats;
using musa::core::Pipeline;
using musa::core::StageTimes;
using musa::core::SweepOptions;
using musa::core::SweepReport;

struct Run {
  double wall_s = 0.0;
  SweepReport report;
  std::vector<std::string> rows;  // one to_row per point, plan order
};

/// Best-of-N timing: each repetition recomputes the sweep from scratch (a
/// fresh Pipeline and memo every time), and the fastest repetition is
/// reported — the standard way to keep scheduler noise out of the ratio.
constexpr int kReps = 3;

Run run_sweep(bool memoize) {
  SweepOptions opts;
  opts.verbose = false;
  opts.memoize = memoize;
  opts.apps = {musa::bench::bench_app()};
  opts.configs = musa::bench::bench_space();

  Run r;
  for (int rep = 0; rep < kReps; ++rep) {
    Pipeline pipeline;
    // No cache path: pure compute, no journal fsyncs in the timing.
    DseEngine dse(pipeline, "", opts);
    const auto t0 = std::chrono::steady_clock::now();
    dse.recompute();
    const auto t1 = std::chrono::steady_clock::now();

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    if (rep > 0 && wall_s >= r.wall_s) continue;
    r.wall_s = wall_s;
    r.report = dse.report();
    r.rows.clear();
    for (const auto& res : dse.results()) {
      std::string joined;
      for (const auto& cell : DseEngine::to_row(res)) {
        if (!joined.empty()) joined += ',';
        joined += cell;
      }
      r.rows.push_back(std::move(joined));
    }
  }
  return r;
}

void json_stages(std::FILE* f, const StageTimes& st) {
  std::fprintf(f,
               "{\"burst_s\": %.6f, \"kernel_s\": %.6f, \"replay_s\": %.6f, "
               "\"power_s\": %.6f}",
               st.burst_s, st.kernel_s, st.replay_s, st.power_s);
}

void json_run(std::FILE* f, const char* name, const Run& r) {
  const double pps =
      r.wall_s > 0 ? static_cast<double>(r.report.computed) / r.wall_s : 0.0;
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"wall_s\": %.4f,\n"
               "    \"points\": %llu,\n"
               "    \"points_per_s\": %.3f,\n"
               "    \"stages\": ",
               name, r.wall_s,
               static_cast<unsigned long long>(r.report.computed), pps);
  json_stages(f, r.report.stages);
  const MemoStats& m = r.report.memo;
  std::fprintf(
      f,
      ",\n    \"memo_hit_rate\": {\"burst\": %.4f, \"region\": %.4f, "
      "\"trace\": %.4f, \"stream\": %.4f, \"warm\": %.4f, "
      "\"perfect\": %.4f, \"overall\": %.4f}\n  }",
      MemoStats::rate(m.burst_hits, m.burst_misses),
      MemoStats::rate(m.region_hits, m.region_misses),
      MemoStats::rate(m.trace_hits, m.trace_misses),
      MemoStats::rate(m.stream_hits, m.stream_misses),
      MemoStats::rate(m.warm_hits, m.warm_misses),
      MemoStats::rate(m.perfect_hits, m.perfect_misses),
      MemoStats::rate(m.total_hits(), m.total_misses()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";

  std::printf("sweep_bench: fixed 24-point sweep (hydro, 4 presets x 3 "
              "freqs x 2 channel counts)\n");
  const Run plain = run_sweep(/*memoize=*/false);
  std::printf("  no-memo: %6.2fs  (%.2f points/s)\n", plain.wall_s,
              plain.report.computed / plain.wall_s);
  const Run memo = run_sweep(/*memoize=*/true);
  std::printf("  memo:    %6.2fs  (%.2f points/s)\n", memo.wall_s,
              memo.report.computed / memo.wall_s);

  // The memo is only a win if it is *free* in results: identical bytes.
  if (plain.rows != memo.rows) {
    std::fprintf(stderr,
                 "FAIL: memoized sweep results differ from non-memoized — "
                 "memo staleness bug\n");
    return 1;
  }
  const double speedup = memo.wall_s > 0 ? plain.wall_s / memo.wall_s : 0.0;
  std::printf("  results byte-identical; speedup %.2fx\n", speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  json_run(f, "no_memo", plain);
  std::fprintf(f, ",\n");
  json_run(f, "memo", memo);
  std::fprintf(f, ",\n  \"speedup\": %.3f,\n  \"identical\": true\n}\n",
               speedup);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
