// Benchmarks the cross-point stage memoization (core/stage_memo.hpp) on a
// fixed 24-point sub-sweep and writes the measurements to BENCH_sweep.json,
// which CI uploads as an artifact so memo regressions show up as a number,
// not a feeling.
//
// The 24 points are one app (hydro) across 4 core presets x 3 frequencies
// x 2 channel counts — the shape the memo is built for: every point shares
// the trace-generation, burst, stream, and warm-up work, so the memoized
// sweep should pay the measured detailed run per point and little else.
//
// The bench runs the sweep four times — memo off, memo on, memo on with
// the span tracer armed, and memo on forced through the core model's
// single-step reference path — checks the result sets are byte-identical
// across all four (the memo's core contract; tracing and the batched block
// replay must never perturb results either), and reports wall time,
// points/s, the per-stage and worker-occupancy breakdown, the memo hit
// rates, the tracing overhead ratio (the DESIGN.md §7e budget: armed
// tracing within ~2% of untraced), and kernel_speedup — the kernel-stage
// time of the single-step reference over the batched block path
// (DESIGN.md §7f).
//
// Usage: sweep_bench [--check-regression BASELINE.json] [output.json]
//   (output defaults to BENCH_sweep.json)
//
// With --check-regression, the memo run's points_per_s and kernel_s are
// compared against the named baseline (a previously committed
// BENCH_sweep.json): a >10% regression on either exits nonzero, so a CI
// leg can catch replay-path slowdowns as a number, not a feeling.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dse.hpp"
#include "fig_common.hpp"
#include "obs/span.hpp"
#include "sweep/controller.hpp"

namespace {

using musa::core::DseEngine;
using musa::core::MachineConfig;
using musa::core::MemoStats;
using musa::core::Pipeline;
using musa::core::StageTimes;
using musa::core::SweepOptions;
using musa::core::SweepReport;

struct Run {
  double wall_s = 0.0;
  SweepReport report;
  std::vector<std::string> rows;  // one to_row per point, plan order
};

/// Best-of-N timing: each repetition recomputes the sweep from scratch (a
/// fresh Pipeline and memo every time), and the fastest repetition is
/// reported — the standard way to keep scheduler noise out of the ratio.
constexpr int kReps = 3;

Run run_sweep(bool memoize, bool trace = false, bool single_step = false) {
  SweepOptions opts;
  opts.verbose = false;
  opts.memoize = memoize;
  opts.apps = {musa::bench::bench_app()};
  opts.configs = musa::bench::bench_space();

  Run r;
  for (int rep = 0; rep < kReps; ++rep) {
    if (trace) musa::obs::Tracer::install();  // re-install clears the ring
    Pipeline pipeline(musa::core::PipelineOptions{.single_step_core =
                                                      single_step});
    // No cache path: pure compute, no journal fsyncs in the timing.
    DseEngine dse(pipeline, "", opts);
    const auto t0 = std::chrono::steady_clock::now();
    dse.recompute();
    const auto t1 = std::chrono::steady_clock::now();

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    if (rep > 0 && wall_s >= r.wall_s) continue;
    r.wall_s = wall_s;
    r.report = dse.report();
    r.rows.clear();
    for (const auto& res : dse.results()) {
      std::string joined;
      for (const auto& cell : DseEngine::to_row(res)) {
        if (!joined.empty()) joined += ',';
        joined += cell;
      }
      r.rows.push_back(std::move(joined));
    }
  }
  return r;
}

void json_stages(std::FILE* f, const StageTimes& st) {
  std::fprintf(f,
               "{\"burst_s\": %.6f, \"kernel_s\": %.6f, \"replay_s\": %.6f, "
               "\"power_s\": %.6f}",
               st.burst_s, st.kernel_s, st.replay_s, st.power_s);
}

void json_run(std::FILE* f, const char* name, const Run& r) {
  const double pps =
      r.wall_s > 0 ? static_cast<double>(r.report.computed) / r.wall_s : 0.0;
  // Worker occupancy: stage compute time over workers × compute-phase wall.
  // The gap is queue idle + journal/merge time — the tail the trace view
  // makes visible per worker.
  const double occupancy =
      r.report.workers > 0 && r.report.wall_s > 0.0
          ? r.report.stages.total_s() /
                (r.report.wall_s * static_cast<double>(r.report.workers))
          : 0.0;
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"wall_s\": %.4f,\n"
               "    \"points\": %llu,\n"
               "    \"points_per_s\": %.3f,\n"
               "    \"workers\": %d,\n"
               "    \"occupancy\": %.4f,\n"
               "    \"stages\": ",
               name, r.wall_s,
               static_cast<unsigned long long>(r.report.computed), pps,
               r.report.workers, occupancy);
  json_stages(f, r.report.stages);
  const MemoStats& m = r.report.memo;
  std::fprintf(
      f,
      ",\n    \"memo_hit_rate\": {\"burst\": %.4f, \"region\": %.4f, "
      "\"trace\": %.4f, \"stream\": %.4f, \"warm\": %.4f, "
      "\"perfect\": %.4f, \"overall\": %.4f}\n  }",
      MemoStats::rate(m.burst_hits, m.burst_misses),
      MemoStats::rate(m.region_hits, m.region_misses),
      MemoStats::rate(m.trace_hits, m.trace_misses),
      MemoStats::rate(m.stream_hits, m.stream_misses),
      MemoStats::rate(m.warm_hits, m.warm_misses),
      MemoStats::rate(m.perfect_hits, m.perfect_misses),
      MemoStats::rate(m.total_hits(), m.total_misses()));
}

/// One elastic controller/worker run (DESIGN.md §7h) over the same
/// 24-point space: forks `workers` processes, leases them 4-point chunks,
/// finalizes through the normal engine, and returns the result rows for
/// the byte-identity check against the in-process runs.
struct ElasticRun {
  double wall_s = 0.0;
  musa::sweep::ElasticReport report;
  std::vector<std::string> rows;
};

ElasticRun run_elastic(int workers, const std::string& cache_path) {
  SweepOptions opts;
  opts.verbose = false;
  opts.apps = {musa::bench::bench_app()};
  opts.configs = musa::bench::bench_space();

  musa::sweep::ElasticOptions eopts;
  eopts.workers = workers;
  eopts.lease_points = 4;
  eopts.heartbeat_s = 0.1;

  ElasticRun r;
  Pipeline pipeline;
  DseEngine dse(pipeline, cache_path, opts);
  dse.clear_cache();  // time a cold sweep, not a cache hit
  const auto t0 = std::chrono::steady_clock::now();
  musa::sweep::ElasticController controller(pipeline, cache_path, opts,
                                            eopts);
  r.report = controller.run();
  dse.sweep(/*force=*/false);  // merge worker journals, write the cache
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  for (const auto& res : dse.results()) {
    std::string joined;
    for (const auto& cell : DseEngine::to_row(res)) {
      if (!joined.empty()) joined += ',';
      joined += cell;
    }
    r.rows.push_back(std::move(joined));
  }
  std::remove(cache_path.c_str());
  std::remove(
      musa::sweep::ElasticController::lease_log_path(cache_path).c_str());
  return r;
}

void json_elastic(std::FILE* f, const ElasticRun& r, int workers,
                  double serial_wall_s) {
  const double pps =
      r.wall_s > 0 ? static_cast<double>(r.report.resolved) / r.wall_s : 0.0;
  // Occupancy here is parallel efficiency against the serial in-process
  // run: serial wall over workers × elastic wall. The gap is fork +
  // journal-fsync + lease-bookkeeping overhead.
  const double occupancy =
      r.wall_s > 0 && workers > 0
          ? serial_wall_s / (r.wall_s * static_cast<double>(workers))
          : 0.0;
  std::fprintf(f,
               "    \"workers_%d\": {\"wall_s\": %.4f, \"points\": %llu, "
               "\"points_per_s\": %.3f, \"occupancy\": %.4f, "
               "\"respawns\": %d, \"revocations\": %d}",
               workers, r.wall_s,
               static_cast<unsigned long long>(r.report.resolved), pps,
               occupancy, r.report.respawns, r.report.revocations);
}

/// Pulls `points_per_s` and `stages.kernel_s` of the "memo" run out of a
/// BENCH_sweep.json written by this program. Plain string scanning — the
/// format is our own, flat, and covered by the identity checks above; a
/// JSON library for two numbers would be a dependency for nothing.
bool parse_baseline(const std::string& path, double& points_per_s,
                    double& kernel_s) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  // "no_memo" precedes "memo" but does not contain the quoted key.
  const std::size_t memo = text.find("\"memo\": {");
  if (memo == std::string::npos) return false;
  const auto field = [&](const char* key, double& out) {
    const std::string needle = std::string("\"") + key + "\": ";
    const std::size_t p = text.find(needle, memo);
    if (p == std::string::npos) return false;
    out = std::strtod(text.c_str() + p + needle.size(), nullptr);
    return true;
  };
  return field("points_per_s", points_per_s) && field("kernel_s", kernel_s);
}

/// The "serve" entry is owned by dse_loadtest, which merges it into this
/// file as the always-last key. Carry it across a rewrite so a batch re-run
/// does not erase the serving-latency numbers. Returns the flat
/// "{...}" object text, or "" when the file has none.
std::string read_serve_entry(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::size_t start = text.find("\"serve\": {");
  if (start == std::string::npos) return {};
  const std::size_t open = text.find('{', start);
  const std::size_t close = text.find('}', open);
  if (close == std::string::npos) return {};
  return text.substr(open, close - open + 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sweep.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check-regression") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      out_path = argv[i];
    }
  }
  double base_pps = 0.0, base_kernel_s = 0.0;
  if (!baseline_path.empty() &&
      !parse_baseline(baseline_path, base_pps, base_kernel_s)) {
    std::fprintf(stderr, "cannot parse baseline %s\n", baseline_path.c_str());
    return 1;
  }

  std::printf("sweep_bench: fixed 24-point sweep (hydro, 4 presets x 3 "
              "freqs x 2 channel counts)\n");
  const Run plain = run_sweep(/*memoize=*/false);
  std::printf("  no-memo: %6.2fs  (%.2f points/s)\n", plain.wall_s,
              plain.report.computed / plain.wall_s);
  const Run memo = run_sweep(/*memoize=*/true);
  std::printf("  memo:    %6.2fs  (%.2f points/s)\n", memo.wall_s,
              memo.report.computed / memo.wall_s);
  const Run traced = run_sweep(/*memoize=*/true, /*trace=*/true);
  const std::size_t trace_events = musa::obs::Tracer::drain().size();
  musa::obs::Tracer::shutdown();
  std::printf("  traced:  %6.2fs  (%.2f points/s, %zu events)\n",
              traced.wall_s, traced.report.computed / traced.wall_s,
              trace_events);
  const Run reference =
      run_sweep(/*memoize=*/true, /*trace=*/false, /*single_step=*/true);
  std::printf("  single-step reference: %6.2fs  (%.2f points/s)\n",
              reference.wall_s, reference.report.computed / reference.wall_s);

  // The memo is only a win if it is *free* in results: identical bytes.
  // The tracer must be invisible in results too — it only observes. And the
  // batched block replay is only an optimisation if the single-step
  // reference path produces the very same rows.
  if (plain.rows != memo.rows || memo.rows != traced.rows ||
      traced.rows != reference.rows) {
    std::fprintf(stderr,
                 "FAIL: sweep results differ across memo/tracing/replay "
                 "modes — staleness, observer-effect, or batching bug\n");
    return 1;
  }
  // Elastic controller scaling: the same 24 points through 1/2/4 forked
  // workers. Byte-identity across worker counts is the §7h contract — the
  // journal-merge finalize must land the exact rows the in-process sweep
  // computes, no matter how the points were partitioned into leases.
  std::vector<ElasticRun> elastic;
  const std::vector<int> worker_counts = {1, 2, 4};
  if (musa::sweep::elastic_supported()) {
    const std::string cache = out_path + ".elastic.cache.csv";
    for (const int w : worker_counts) {
      elastic.push_back(run_elastic(w, cache));
      const ElasticRun& e = elastic.back();
      std::printf("  elastic %dw: %5.2fs  (%.2f points/s)\n", w, e.wall_s,
                  e.wall_s > 0 ? e.report.resolved / e.wall_s : 0.0);
      if (e.rows != memo.rows) {
        std::fprintf(stderr,
                     "FAIL: elastic %d-worker sweep rows differ from the "
                     "in-process sweep — journal merge broke byte "
                     "identity\n",
                     w);
        return 1;
      }
    }
  }

  const double speedup = memo.wall_s > 0 ? plain.wall_s / memo.wall_s : 0.0;
  const double trace_overhead =
      memo.wall_s > 0 ? traced.wall_s / memo.wall_s : 0.0;
  // Kernel-stage time of the single-step reference over the batched block
  // path — same memo state, same results, only the replay loop differs.
  const double kernel_speedup =
      memo.report.stages.kernel_s > 0
          ? reference.report.stages.kernel_s / memo.report.stages.kernel_s
          : 0.0;
  std::printf("  results byte-identical; speedup %.2fx, "
              "tracing overhead %.3fx, kernel_speedup %.2fx\n",
              speedup, trace_overhead, kernel_speedup);

  const std::string serve_entry = read_serve_entry(out_path);
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  json_run(f, "no_memo", plain);
  std::fprintf(f, ",\n");
  json_run(f, "memo", memo);
  std::fprintf(f, ",\n");
  json_run(f, "traced", traced);
  std::fprintf(f, ",\n");
  json_run(f, "reference", reference);
  if (!elastic.empty()) {
    std::fprintf(f, ",\n  \"elastic\": {\n");
    for (std::size_t i = 0; i < elastic.size(); ++i) {
      json_elastic(f, elastic[i], worker_counts[i], memo.wall_s);
      std::fprintf(f, i + 1 < elastic.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "  }");
  }
  std::fprintf(f,
               ",\n  \"speedup\": %.3f,\n  \"trace_overhead\": %.4f,\n"
               "  \"kernel_speedup\": %.3f,\n"
               "  \"trace_events\": %zu,\n  \"identical\": true",
               speedup, trace_overhead, kernel_speedup, trace_events);
  if (!serve_entry.empty())
    std::fprintf(f, ",\n  \"serve\": %s", serve_entry.c_str());
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!baseline_path.empty()) {
    const double new_pps =
        memo.wall_s > 0
            ? static_cast<double>(memo.report.computed) / memo.wall_s
            : 0.0;
    const double new_kernel_s = memo.report.stages.kernel_s;
    std::printf("regression check vs %s: points/s %.2f -> %.2f, "
                "kernel_s %.4f -> %.4f\n",
                baseline_path.c_str(), base_pps, new_pps, base_kernel_s,
                new_kernel_s);
    bool failed = false;
    if (new_pps < 0.9 * base_pps) {
      std::fprintf(stderr,
                   "FAIL: memo throughput regressed >10%% "
                   "(%.2f -> %.2f points/s)\n",
                   base_pps, new_pps);
      failed = true;
    }
    if (new_kernel_s > 1.1 * base_kernel_s) {
      std::fprintf(stderr,
                   "FAIL: kernel stage regressed >10%% (%.4fs -> %.4fs)\n",
                   base_kernel_s, new_kernel_s);
      failed = true;
    }
    if (failed) return 1;
    std::printf("regression check passed\n");
  }
  return 0;
}
