// Runs (or resumes) the full 864-configuration × 5-application design space
// sweep and writes the shared result cache consumed by the figure benches.
//
// The sweep is crash-safe: every completed point is fsync'd to an
// append-only journal next to the cache, so a killed run resumes exactly
// where it stopped. It is also shardable across processes or machines:
//
//   run_dse --shard 0/2 &        # each shard owns every 2nd point
//   run_dse --shard 1/2 &        # (run anywhere sharing the cache dir)
//   wait; run_dse                # merges the journals into the cache
//
// Usage: run_dse [--force] [--shard i/N] [--no-verify] [--no-memo]
//   --force      discard the cache and all journals, then sweep from scratch
//   --shard i/N  compute only points with index % N == i (0 <= i < N)
//   --no-verify  skip config lint and result-invariant enforcement
//                (src/verify); for performance experiments only —
//                `dse_lint` can re-check the cache afterwards
//   --no-memo    disable the shared cross-point stage memo
//                (core/stage_memo.hpp): every stage recomputes per point.
//                Results are bit-identical with or without it; use this to
//                bisect a suspected memo-staleness bug
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/progress.hpp"
#include "fig_common.hpp"

namespace {

bool parse_shard(const char* spec, musa::core::SweepOptions* opts) {
  int i = 0, n = 0;
  if (std::sscanf(spec, "%d/%d", &i, &n) != 2 || n < 1 || i < 0 || i >= n)
    return false;
  opts->shard_index = i;
  opts->shard_count = n;
  return true;
}

void print_report(const musa::core::SweepReport& rep) {
  std::printf("sweep report: %llu total, %llu in shard, %llu resumed, "
              "%llu computed%s\n",
              static_cast<unsigned long long>(rep.total),
              static_cast<unsigned long long>(rep.shard_points),
              static_cast<unsigned long long>(rep.resumed),
              static_cast<unsigned long long>(rep.computed),
              rep.finalized ? ", cache finalized" : "");
  if (rep.dropped > 0)
    std::printf("  recovered from crash damage: %llu corrupt journal "
                "record(s) dropped and recomputed\n",
                static_cast<unsigned long long>(rep.dropped));
  if (rep.invalid > 0)
    std::printf("  verification: %llu cached row(s) violated result "
                "invariants; dropped and recomputed\n",
                static_cast<unsigned long long>(rep.invalid));
  const musa::core::StageTimes& st = rep.stages;
  if (st.points > 0) {
    std::printf("stage breakdown over %llu simulated points "
                "(%s total compute):\n",
                static_cast<unsigned long long>(st.points),
                musa::format_duration(st.total_s()).c_str());
    const auto line = [&](const char* name, double s) {
      std::printf("  %-12s %8.2fs  (%5.1f%%)\n", name, s,
                  st.total_s() > 0 ? 100.0 * s / st.total_s() : 0.0);
    };
    line("burst", st.burst_s);
    line("kernel sim", st.kernel_s);
    line("MPI replay", st.replay_s);
    line("power", st.power_s);
  }
  const musa::core::MemoStats& m = rep.memo;
  if (m.total_hits() + m.total_misses() > 0) {
    std::printf("stage memo hit rates (hits/lookups):\n");
    const auto line = [](const char* name, std::uint64_t hits,
                         std::uint64_t misses) {
      std::printf("  %-12s %8llu/%-8llu (%5.1f%%)\n", name,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(hits + misses),
                  100.0 * musa::core::MemoStats::rate(hits, misses));
    };
    line("burst", m.burst_hits, m.burst_misses);
    line("region", m.region_hits, m.region_misses);
    line("trace", m.trace_hits, m.trace_misses);
    line("stream", m.stream_hits, m.stream_misses);
    line("warm state", m.warm_hits, m.warm_misses);
    line("perfect mem", m.perfect_hits, m.perfect_misses);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace musa;
  bool force = false;
  core::SweepOptions opts;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--force") == 0) {
      force = true;
    } else if (std::strcmp(argv[a], "--no-verify") == 0) {
      opts.verify = false;
    } else if (std::strcmp(argv[a], "--no-memo") == 0) {
      opts.memoize = false;
    } else if (std::strcmp(argv[a], "--shard") == 0 && a + 1 < argc) {
      if (!parse_shard(argv[++a], &opts)) {
        std::fprintf(stderr, "bad --shard spec (want i/N with 0 <= i < N)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: run_dse [--force] [--shard i/N] [--no-verify] "
                   "[--no-memo]\n");
      return 2;
    }
  }

  core::Pipeline pipeline;
  if (opts.shard_count > 1 && bench::dse_cache_path().empty()) {
    std::fprintf(stderr,
                 "--shard needs a cache path to merge journals into; "
                 "set MUSA_DSE_CACHE\n");
    return 2;
  }
  core::DseEngine dse(pipeline, bench::dse_cache_path(), opts);

  std::printf("MUSA-DSE full sweep (864 configs x 5 apps = 4320 points)\n");
  std::printf("cache file: %s\n", bench::dse_cache_path().c_str());
  if (opts.shard_count > 1)
    std::printf("shard %d of %d\n", opts.shard_index, opts.shard_count);
  if (!opts.verify)
    std::printf("verification DISABLED (--no-verify): configs and results "
                "will not be checked; lint the cache with dse_lint later\n");

  const core::SweepReport rep = dse.sweep(force);
  print_report(rep);
  if (!rep.finalized) {
    std::printf("shard journal written; rerun (any shard spec, or none) "
                "once every shard has finished to merge the cache\n");
    return 0;
  }

  const auto& results = dse.results();
  std::printf("sweep complete: %zu simulation results available\n",
              results.size());

  // Quick integrity summary: per-app result counts and time ranges.
  for (const auto& app : apps::registry()) {
    double tmin = 1e30, tmax = 0;
    int n = 0;
    for (const auto& r : results) {
      if (r.app != app.name) continue;
      ++n;
      tmin = std::min(tmin, r.wall_seconds);
      tmax = std::max(tmax, r.wall_seconds);
    }
    std::printf("  %-8s %4d points, wall time %8.2f .. %8.2f ms\n",
                app.name.c_str(), n, tmin * 1e3, tmax * 1e3);
  }
  return 0;
}
