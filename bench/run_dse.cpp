// Runs (or resumes) the full 864-configuration × 5-application design space
// sweep and writes the shared result cache consumed by the figure benches.
//
// The sweep is crash-safe: every completed point is fsync'd to an
// append-only journal next to the cache, so a killed run resumes exactly
// where it stopped. It is also shardable across processes or machines:
//
//   run_dse --shard 0/2 &        # each shard owns every 2nd point
//   run_dse --shard 1/2 &        # (run anywhere sharing the cache dir)
//   wait; run_dse                # merges the journals into the cache
//
// Failures are *contained* by default (DESIGN.md "Failure model"): a point
// that throws is quarantined as a journaled FAIL row and the sweep keeps
// going; the run then exits 3 with a quarantine report instead of losing
// the other points. `--strict` restores fail-fast; `--retry-failed` re-runs
// exactly the quarantined points; `--timeout` arms a per-point watchdog;
// `--inject` (or MUSA_FAULT) arms the deterministic fault harness.
//
// Usage: run_dse [--force] [--shard i/N] [--no-verify] [--no-memo]
//                [--bench] [--strict] [--retry-failed] [--timeout S]
//                [--inject SPEC]
//   --force        discard the cache and all journals, then sweep fresh
//   --shard i/N    compute only points with index % N == i (0 <= i < N)
//   --no-verify    skip config lint and result-invariant enforcement
//                  (src/verify); for performance experiments only —
//                  `dse_lint` can re-check the cache afterwards
//   --no-memo      disable the shared cross-point stage memo
//                  (core/stage_memo.hpp): every stage recomputes per point.
//                  Results are bit-identical with or without it; use this
//                  to bisect a suspected memo-staleness bug
//   --bench        sweep the fixed 24-point bench space (hydro x 4 core
//                  presets x 3 freqs x 2 channel counts) instead of the
//                  full grid — the chaos-test harness in CI uses this
//   --strict       fail fast: the first failing point aborts the sweep
//                  (exit 1) instead of quarantining
//   --retry-failed re-run points quarantined by a previous run (they are
//                  otherwise skipped on resume as known-bad)
//   --timeout S    per-point wall-clock budget in seconds; a runaway point
//                  quarantines as class `timeout`
//   --inject SPEC  arm fault injection, SPEC = site:kind:seed:prob[:param]
//                  [,spec...] (see src/verify/faultpoint.hpp); overrides
//                  the MUSA_FAULT environment variable
//
// Exit codes: 0 success, 1 strict-mode abort, 2 bad usage, 3 sweep
// completed with quarantined points.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/check.hpp"
#include "common/progress.hpp"
#include "fig_common.hpp"
#include "verify/faultpoint.hpp"

namespace {

bool parse_shard(const char* spec, musa::core::SweepOptions* opts) {
  int i = 0, n = 0;
  if (std::sscanf(spec, "%d/%d", &i, &n) != 2 || n < 1 || i < 0 || i >= n)
    return false;
  opts->shard_index = i;
  opts->shard_count = n;
  return true;
}

void print_report(const musa::core::SweepReport& rep) {
  std::printf("sweep report: %llu total, %llu in shard, %llu resumed, "
              "%llu computed%s\n",
              static_cast<unsigned long long>(rep.total),
              static_cast<unsigned long long>(rep.shard_points),
              static_cast<unsigned long long>(rep.resumed),
              static_cast<unsigned long long>(rep.computed),
              rep.finalized ? ", cache finalized" : "");
  if (rep.dropped > 0)
    std::printf("  recovered from crash damage: %llu corrupt journal "
                "record(s) dropped and recomputed\n",
                static_cast<unsigned long long>(rep.dropped));
  if (rep.invalid > 0)
    std::printf("  verification: %llu cached row(s) violated result "
                "invariants; dropped and recomputed\n",
                static_cast<unsigned long long>(rep.invalid));
  if (rep.retries > 0)
    std::printf("  retried %llu transient io-class failure(s)\n",
                static_cast<unsigned long long>(rep.retries));
  const musa::core::StageTimes& st = rep.stages;
  if (st.points > 0) {
    std::printf("stage breakdown over %llu simulated points "
                "(%s total compute):\n",
                static_cast<unsigned long long>(st.points),
                musa::format_duration(st.total_s()).c_str());
    const auto line = [&](const char* name, double s) {
      std::printf("  %-12s %8.2fs  (%5.1f%%)\n", name, s,
                  st.total_s() > 0 ? 100.0 * s / st.total_s() : 0.0);
    };
    line("burst", st.burst_s);
    line("kernel sim", st.kernel_s);
    line("MPI replay", st.replay_s);
    line("power", st.power_s);
  }
  const musa::core::MemoStats& m = rep.memo;
  if (m.total_hits() + m.total_misses() > 0) {
    std::printf("stage memo hit rates (hits/lookups):\n");
    const auto line = [](const char* name, std::uint64_t hits,
                         std::uint64_t misses) {
      std::printf("  %-12s %8llu/%-8llu (%5.1f%%)\n", name,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(hits + misses),
                  100.0 * musa::core::MemoStats::rate(hits, misses));
    };
    line("burst", m.burst_hits, m.burst_misses);
    line("region", m.region_hits, m.region_misses);
    line("trace", m.trace_hits, m.trace_misses);
    line("stream", m.stream_hits, m.stream_misses);
    line("warm state", m.warm_hits, m.warm_misses);
    line("perfect mem", m.perfect_hits, m.perfect_misses);
  }
}

/// The post-sweep quarantine report: every FAIL row, with enough context
/// (class, stage, attempts, message) to debug the point without rerunning.
void print_quarantine(const musa::core::SweepReport& rep) {
  if (rep.quarantined == 0) return;
  std::printf("QUARANTINED: %llu point(s) failed and were contained:\n",
              static_cast<unsigned long long>(rep.quarantined));
  for (const auto& q : rep.quarantine)
    std::printf("  %-28s class=%-9s stage=%-7s attempts=%d  %s\n",
                q.key.c_str(), q.error_class.c_str(),
                q.stage.empty() ? "unknown" : q.stage.c_str(), q.attempts,
                q.message.c_str());
  std::printf("fix the cause (or clear the fault) and rerun with "
              "--retry-failed to recompute exactly these points\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace musa;
  bool force = false;
  bool bench_sweep = false;
  const char* inject_spec = nullptr;
  core::SweepOptions opts;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--force") == 0) {
      force = true;
    } else if (std::strcmp(argv[a], "--no-verify") == 0) {
      opts.verify = false;
    } else if (std::strcmp(argv[a], "--no-memo") == 0) {
      opts.memoize = false;
    } else if (std::strcmp(argv[a], "--bench") == 0) {
      bench_sweep = true;
    } else if (std::strcmp(argv[a], "--strict") == 0) {
      opts.fail_fast = true;
    } else if (std::strcmp(argv[a], "--retry-failed") == 0) {
      opts.retry_failed = true;
    } else if (std::strcmp(argv[a], "--timeout") == 0 && a + 1 < argc) {
      opts.point_timeout_s = std::atof(argv[++a]);
      if (opts.point_timeout_s <= 0.0) {
        std::fprintf(stderr, "bad --timeout (want seconds > 0)\n");
        return 2;
      }
    } else if (std::strcmp(argv[a], "--inject") == 0 && a + 1 < argc) {
      inject_spec = argv[++a];
    } else if (std::strcmp(argv[a], "--shard") == 0 && a + 1 < argc) {
      if (!parse_shard(argv[++a], &opts)) {
        std::fprintf(stderr, "bad --shard spec (want i/N with 0 <= i < N)\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: run_dse [--force] [--shard i/N] [--no-verify] "
                   "[--no-memo] [--bench] [--strict] [--retry-failed] "
                   "[--timeout S] [--inject SPEC]\n");
      return 2;
    }
  }

  try {
    verify::FaultPlan plan = inject_spec != nullptr
                                 ? verify::FaultPlan::parse(inject_spec)
                                 : verify::FaultPlan::from_env();
    if (!plan.empty())
      std::printf("fault injection ARMED: %s\n", plan.str().c_str());
    verify::FaultPlan::install(std::move(plan));
  } catch (const SimError& e) {
    std::fprintf(stderr, "bad fault spec: %s\n", e.what());
    return 2;
  }

  if (bench_sweep) {
    opts.apps = {bench::bench_app()};
    opts.configs = bench::bench_space();
  }

  core::Pipeline pipeline;
  if (opts.shard_count > 1 && bench::dse_cache_path().empty()) {
    std::fprintf(stderr,
                 "--shard needs a cache path to merge journals into; "
                 "set MUSA_DSE_CACHE\n");
    return 2;
  }
  core::DseEngine dse(pipeline, bench::dse_cache_path(), opts);

  if (bench_sweep)
    std::printf("MUSA-DSE bench sweep (24 configs x 1 app = 24 points)\n");
  else
    std::printf("MUSA-DSE full sweep (864 configs x 5 apps = 4320 points)\n");
  std::printf("cache file: %s\n", bench::dse_cache_path().c_str());
  if (opts.shard_count > 1)
    std::printf("shard %d of %d\n", opts.shard_index, opts.shard_count);
  if (opts.point_timeout_s > 0.0)
    std::printf("per-point watchdog: %.3gs\n", opts.point_timeout_s);
  if (!opts.verify)
    std::printf("verification DISABLED (--no-verify): configs and results "
                "will not be checked; lint the cache with dse_lint later\n");

  core::SweepReport rep;
  try {
    rep = dse.sweep(force);
  } catch (const SimError& e) {
    std::fprintf(stderr, "sweep aborted%s: %s\n",
                 opts.fail_fast ? " (--strict)" : "", e.what());
    return 1;
  }
  print_report(rep);
  print_quarantine(rep);
  if (rep.quarantined > 0) return 3;
  if (!rep.finalized) {
    std::printf("shard journal written; rerun (any shard spec, or none) "
                "once every shard has finished to merge the cache\n");
    return 0;
  }

  const auto& results = dse.results();
  std::printf("sweep complete: %zu simulation results available\n",
              results.size());

  // Quick integrity summary: per-app result counts and time ranges.
  for (const auto& app : apps::registry()) {
    double tmin = 1e30, tmax = 0;
    int n = 0;
    for (const auto& r : results) {
      if (r.app != app.name) continue;
      ++n;
      tmin = std::min(tmin, r.wall_seconds);
      tmax = std::max(tmax, r.wall_seconds);
    }
    if (n == 0) continue;  // app not in this plan (--bench sweeps one app)
    std::printf("  %-8s %4d points, wall time %8.2f .. %8.2f ms\n",
                app.name.c_str(), n, tmin * 1e3, tmax * 1e3);
  }
  return 0;
}
