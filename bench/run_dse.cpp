// Runs (or resumes) the full 864-configuration × 5-application design space
// sweep and writes the shared result cache consumed by the figure benches.
//
// The sweep is crash-safe: every completed point is fsync'd to an
// append-only journal next to the cache, so a killed run resumes exactly
// where it stopped. It is also shardable across processes or machines:
//
//   run_dse --shard 0/2 &        # each shard owns every 2nd point
//   run_dse --shard 1/2 &        # (run anywhere sharing the cache dir)
//   wait; run_dse                # merges the journals into the cache
//
// Failures are *contained* by default (DESIGN.md "Failure model"): a point
// that throws is quarantined as a journaled FAIL row and the sweep keeps
// going; the run then exits 3 with a quarantine report instead of losing
// the other points. `--strict` restores fail-fast; `--retry-failed` re-runs
// exactly the quarantined points; `--timeout` arms a per-point watchdog;
// `--inject` (or MUSA_FAULT) arms the deterministic fault harness.
//
// Tracing (DESIGN.md §7e): `--trace-out sweep.json` (or MUSA_TRACE=path)
// arms the span tracer and exports a Chrome trace_event JSON loadable in
// Perfetto / chrome://tracing. A shard that does not finalize the sweep
// writes a `<trace>.shard-i-of-N.events.jsonl` sidecar instead; the run
// that finalizes splices every sidecar plus its own events into the single
// merged `<trace>` JSON and removes the sidecars. `--metrics-out path`
// (default `<cache>.metrics.json` when tracing) writes the flat metric
// snapshot, and a one-screen summary table prints at exit.
//
// Elastic sweeps (DESIGN.md §7h): `--workers N` replaces the manual
// shard-and-merge recipe with a controller that forks N worker processes,
// leases them bounded point chunks, and revokes/re-leases on death, hang,
// or straggle. Chunks commit only on durable journal coverage, so kill -9
// of any worker at any time still converges to the byte-identical cache.
//
// Usage: run_dse [--force] [--shard i/N] [--workers N] [--lease-points K]
//                [--heartbeat-ms MS] [--straggler-factor F] [--no-verify]
//                [--no-memo] [--bench] [--strict] [--retry-failed]
//                [--timeout S] [--inject SPEC] [--trace-out PATH]
//                [--metrics-out PATH] [--help]
//   --force        discard the cache and all journals, then sweep fresh
//   --shard i/N    compute only points with index % N == i (0 <= i < N)
//   --workers N    elastic sweep with N forked worker processes; excludes
//                  --shard and --strict, needs a cache path. N=1 runs the
//                  plain in-process sweep
//   --lease-points K  points per leased chunk (default 8)
//   --heartbeat-ms MS worker heartbeat interval (default 250)
//   --straggler-factor F  revoke leases older than F x the median
//                  committed-chunk time (default 4)
//   --no-verify    skip config lint and result-invariant enforcement
//                  (src/verify); for performance experiments only —
//                  `dse_lint` can re-check the cache afterwards
//   --no-memo      disable the shared cross-point stage memo
//                  (core/stage_memo.hpp): every stage recomputes per point.
//                  Results are bit-identical with or without it; use this
//                  to bisect a suspected memo-staleness bug
//   --bench        sweep the fixed 24-point bench space (hydro x 4 core
//                  presets x 3 freqs x 2 channel counts) instead of the
//                  full grid — the chaos-test harness in CI uses this
//   --strict       fail fast: the first failing point aborts the sweep
//                  (exit 1) instead of quarantining
//   --retry-failed re-run points quarantined by a previous run (they are
//                  otherwise skipped on resume as known-bad)
//   --timeout S    per-point wall-clock budget in seconds; a runaway point
//                  quarantines as class `timeout`
//   --inject SPEC  arm fault injection, SPEC = site:kind:seed:prob[:param]
//                  [,spec...] (see src/verify/faultpoint.hpp); overrides
//                  the MUSA_FAULT environment variable
//   --trace-out P  arm span tracing; write the Chrome trace (or, for a
//                  non-finalizing shard, its JSONL sidecar) to P. The
//                  MUSA_TRACE environment variable supplies a default path
//   --metrics-out P  write the flat metric snapshot JSON to P (defaults to
//                  `<cache>.metrics.json` whenever tracing is armed)
//   --help         print this usage text and exit 0
//
// Exit codes: 0 success, 1 strict-mode abort, 2 bad usage, 3 sweep
// completed with quarantined points.
#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/progress.hpp"
#include "fig_common.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sweep/controller.hpp"
#include "verify/faultpoint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: run_dse [--force] [--shard i/N] [--workers N] [--lease-points K]\n"
    "               [--heartbeat-ms MS] [--straggler-factor F] [--no-verify]\n"
    "               [--no-memo] [--bench] [--strict] [--retry-failed]\n"
    "               [--timeout S] [--inject SPEC] [--trace-out PATH]\n"
    "               [--metrics-out PATH] [--help]\n"
    "  --force         discard the cache and all journals, sweep fresh\n"
    "  --shard i/N     compute only points with index %% N == i\n"
    "  --workers N     elastic sweep: fork N worker processes, lease them\n"
    "                  bounded point chunks, revoke + re-lease on death,\n"
    "                  hang, or straggle (DESIGN.md §7h). Excludes --shard\n"
    "                  and --strict; needs a cache path. N=1 runs the plain\n"
    "                  in-process sweep\n"
    "  --lease-points K   points per leased chunk (default 8)\n"
    "  --heartbeat-ms MS  worker heartbeat interval (default 250)\n"
    "  --straggler-factor F  revoke leases older than F x the median\n"
    "                  committed-chunk time (default 4)\n"
    "  --no-verify     skip config lint and result-invariant enforcement\n"
    "  --no-memo       disable the shared cross-point stage memo\n"
    "  --bench         sweep the fixed 24-point bench space\n"
    "  --strict        fail fast: first failing point aborts (exit 1)\n"
    "  --retry-failed  re-run points quarantined by a previous run\n"
    "  --timeout S     per-point wall-clock budget in seconds\n"
    "  --inject SPEC   arm fault injection (site:kind:seed:prob[:param],...);\n"
    "                  overrides MUSA_FAULT\n"
    "  --trace-out P   arm span tracing; write the Chrome trace_event JSON\n"
    "                  (Perfetto-loadable) to P. A shard that does not\n"
    "                  finalize the sweep writes P.shard-i-of-N.events.jsonl\n"
    "                  instead; the finalizing run merges every sidecar into\n"
    "                  the single P. MUSA_TRACE=path supplies a default\n"
    "  --metrics-out P write the flat metric snapshot JSON to P (defaults\n"
    "                  to <cache>.metrics.json whenever tracing is armed)\n"
    "  --help          print this text and exit 0\n"
    "exit codes: 0 success, 1 strict-mode abort, 2 bad usage, 3 sweep\n"
    "completed with quarantined points\n";

/// Strict non-negative decimal parse: the whole string must be digits.
/// sscanf-style parsing accepted "1/2x" and "0x1/2"; a sharded sweep run
/// from a typo silently computes the wrong slice of the space, so flag
/// values that are not pure numbers must die with exit 2 instead.
bool parse_uint(const char* s, long* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0' || v < 0) return false;
  *out = v;
  return true;
}

bool parse_positive(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0' || !(v > 0.0)) return false;
  *out = v;
  return true;
}

bool parse_shard(const char* spec, musa::core::SweepOptions* opts) {
  const char* slash = std::strchr(spec, '/');
  if (slash == nullptr) return false;
  const std::string index_part(spec, slash);
  long i = 0, n = 0;
  if (!parse_uint(index_part.c_str(), &i) || !parse_uint(slash + 1, &n))
    return false;
  if (n < 1 || i >= n) return false;
  opts->shard_index = static_cast<int>(i);
  opts->shard_count = static_cast<int>(n);
  return true;
}

void print_elastic(const musa::sweep::ElasticReport& er) {
  std::printf("elastic phase: %llu point(s) in %d chunk(s), %llu key(s) "
              "resolved in %s\n",
              static_cast<unsigned long long>(er.points), er.chunks,
              static_cast<unsigned long long>(er.resolved),
              musa::format_duration(er.wall_s).c_str());
  if (er.spawned > 0)
    std::printf("  workers: %d forked (%d respawn(s)), %d died, %d killed "
                "stale\n",
                er.spawned, er.respawns, er.deaths, er.killed);
  if (er.revocations > 0 || er.inprocess_chunks > 0)
    std::printf("  leases: %d revoked (%d straggler(s)); %d chunk(s) "
                "finished in-process by the controller\n",
                er.revocations, er.stragglers, er.inprocess_chunks);
  if (er.tail_dropped > 0)
    std::printf("  tailers dropped %llu corrupt worker record(s) "
                "(recomputed elsewhere)\n",
                static_cast<unsigned long long>(er.tail_dropped));
}

void print_report(const musa::core::SweepReport& rep) {
  std::printf("sweep report: %llu total, %llu in shard, %llu resumed, "
              "%llu computed%s\n",
              static_cast<unsigned long long>(rep.total),
              static_cast<unsigned long long>(rep.shard_points),
              static_cast<unsigned long long>(rep.resumed),
              static_cast<unsigned long long>(rep.computed),
              rep.finalized ? ", cache finalized" : "");
  if (rep.analysis_boxes > 0)
    std::printf("  static space analysis: plan proved feasible in %llu "
                "box(es); %llu infeasible grid config(s) skipped, per-point "
                "lint elided\n",
                static_cast<unsigned long long>(rep.analysis_boxes),
                static_cast<unsigned long long>(rep.statically_skipped));
  if (rep.dropped > 0)
    std::printf("  recovered from crash damage: %llu corrupt journal "
                "record(s) dropped and recomputed\n",
                static_cast<unsigned long long>(rep.dropped));
  if (rep.invalid > 0)
    std::printf("  verification: %llu cached row(s) violated result "
                "invariants; dropped and recomputed\n",
                static_cast<unsigned long long>(rep.invalid));
  if (rep.retries > 0)
    std::printf("  retried %llu transient io-class failure(s)\n",
                static_cast<unsigned long long>(rep.retries));
  if (rep.workers > 0 && rep.wall_s > 0.0 && rep.computed > 0)
    std::printf("  compute phase: %d worker(s), %s wall, occupancy %.1f%%\n",
                rep.workers, musa::format_duration(rep.wall_s).c_str(),
                100.0 * rep.stages.total_s() /
                    (rep.wall_s * static_cast<double>(rep.workers)));
  const musa::core::StageTimes& st = rep.stages;
  if (st.points > 0) {
    std::printf("stage breakdown over %llu simulated points "
                "(%s total compute):\n",
                static_cast<unsigned long long>(st.points),
                musa::format_duration(st.total_s()).c_str());
    const auto line = [&](const char* name, double s) {
      std::printf("  %-12s %8.2fs  (%5.1f%%)\n", name, s,
                  st.total_s() > 0 ? 100.0 * s / st.total_s() : 0.0);
    };
    line("burst", st.burst_s);
    line("kernel sim", st.kernel_s);
    line("MPI replay", st.replay_s);
    line("power", st.power_s);
  }
  const musa::core::MemoStats& m = rep.memo;
  if (m.total_hits() + m.total_misses() > 0) {
    std::printf("stage memo hit rates (hits/lookups):\n");
    const auto line = [](const char* name, std::uint64_t hits,
                         std::uint64_t misses) {
      std::printf("  %-12s %8llu/%-8llu (%5.1f%%)\n", name,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(hits + misses),
                  100.0 * musa::core::MemoStats::rate(hits, misses));
    };
    line("burst", m.burst_hits, m.burst_misses);
    line("region", m.region_hits, m.region_misses);
    line("trace", m.trace_hits, m.trace_misses);
    line("stream", m.stream_hits, m.stream_misses);
    line("warm state", m.warm_hits, m.warm_misses);
    line("perfect mem", m.perfect_hits, m.perfect_misses);
  }
}

/// The post-sweep quarantine report: every FAIL row, with enough context
/// (class, stage, attempts, message) to debug the point without rerunning.
void print_quarantine(const musa::core::SweepReport& rep) {
  if (rep.quarantined == 0) return;
  std::printf("QUARANTINED: %llu point(s) failed and were contained:\n",
              static_cast<unsigned long long>(rep.quarantined));
  for (const auto& q : rep.quarantine)
    std::printf("  %-28s class=%-9s stage=%-7s attempts=%d  %s\n",
                q.key.c_str(), q.error_class.c_str(),
                q.stage.empty() ? "unknown" : q.stage.c_str(), q.attempts,
                q.message.c_str());
  std::printf("fix the cause (or clear the fault) and rerun with "
              "--retry-failed to recompute exactly these points\n");
}

/// Export pass run after every sweep, successful or quarantined. A run that
/// did not finalize the sweep (an in-flight shard, or quarantines holding
/// the cache back) parks its events in a JSONL sidecar; the finalizing run
/// splices every sidecar plus its own events into the single merged Chrome
/// trace and removes the sidecars. Export failures are reported, never
/// fatal — observability must not turn a finished sweep into an error.
void export_observability(const std::string& trace_out,
                          const std::string& metrics_path,
                          const musa::core::SweepReport& rep,
                          const musa::core::SweepOptions& opts) {
  using namespace musa;
  try {
    if (!trace_out.empty()) {
      const std::vector<obs::TraceEvent> events = obs::Tracer::drain();
      if (obs::Tracer::dropped() > 0)
        std::fprintf(stderr,
                     "[obs] trace ring wrapped: %llu oldest event(s) lost\n",
                     static_cast<unsigned long long>(obs::Tracer::dropped()));
      obs::TraceMeta meta;
      meta.pid = opts.shard_index;
      meta.process_name =
          opts.shard_count > 1
              ? "run_dse shard " + std::to_string(opts.shard_index) + "/" +
                    std::to_string(opts.shard_count)
              : "run_dse";
      const std::vector<std::string> sidecars =
          obs::find_trace_sidecars(trace_out);
      if (!rep.finalized) {
        const std::string sidecar = obs::trace_sidecar_path(
            trace_out, opts.shard_index, opts.shard_count);
        obs::write_trace_jsonl(sidecar, events, obs::Tracer::epoch_unix_us(),
                               meta);
        std::printf("trace sidecar written: %s (%zu event(s); merges into "
                    "%s when the sweep finalizes)\n",
                    sidecar.c_str(), events.size(), trace_out.c_str());
      } else if (events.empty() && sidecars.empty() &&
                 CsvDoc::file_exists(trace_out)) {
        // A pure cache-hit rerun after the trace was already merged: leave
        // the merged timeline alone instead of overwriting it with nothing.
        std::printf("trace already merged: %s (left untouched)\n",
                    trace_out.c_str());
      } else {
        obs::write_chrome_trace(trace_out, events,
                                obs::Tracer::epoch_unix_us(), meta, sidecars);
        for (const auto& p : sidecars) std::remove(p.c_str());
        std::printf("trace written: %s (%zu local event(s), %zu sidecar(s) "
                    "merged; load in Perfetto or chrome://tracing)\n",
                    trace_out.c_str(), events.size(), sidecars.size());
      }
    }
    if (!metrics_path.empty()) {
      const obs::MetricsSnapshot snap = obs::MetricRegistry::global().snapshot();
      obs::write_metrics_json(metrics_path, snap);
      std::printf("metrics written: %s\n", metrics_path.c_str());
      std::printf("%s", obs::summary_table(snap).c_str());
    }
  } catch (const musa::SimError& e) {
    std::fprintf(stderr, "[obs] export failed: %s\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace musa;
  bool force = false;
  bool bench_sweep = false;
  const char* inject_spec = nullptr;
  std::string trace_out;
  std::string metrics_out;
  core::SweepOptions opts;
  sweep::ElasticOptions elastic;
  bool workers_flag = false;   // --workers given (any N)
  bool elastic_tuning = false; // a lease/heartbeat/straggler knob given
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--force") == 0) {
      force = true;
    } else if (std::strcmp(argv[a], "--help") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strcmp(argv[a], "--trace-out") == 0 && a + 1 < argc) {
      trace_out = argv[++a];
    } else if (std::strcmp(argv[a], "--metrics-out") == 0 && a + 1 < argc) {
      metrics_out = argv[++a];
    } else if (std::strcmp(argv[a], "--no-verify") == 0) {
      opts.verify = false;
    } else if (std::strcmp(argv[a], "--no-memo") == 0) {
      opts.memoize = false;
    } else if (std::strcmp(argv[a], "--bench") == 0) {
      bench_sweep = true;
    } else if (std::strcmp(argv[a], "--strict") == 0) {
      opts.fail_fast = true;
    } else if (std::strcmp(argv[a], "--retry-failed") == 0) {
      opts.retry_failed = true;
    } else if (std::strcmp(argv[a], "--timeout") == 0 && a + 1 < argc) {
      if (!parse_positive(argv[++a], &opts.point_timeout_s)) {
        std::fprintf(stderr, "bad --timeout '%s' (want seconds > 0)\n%s",
                     argv[a], kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--inject") == 0 && a + 1 < argc) {
      inject_spec = argv[++a];
    } else if (std::strcmp(argv[a], "--shard") == 0 && a + 1 < argc) {
      if (!parse_shard(argv[++a], &opts)) {
        std::fprintf(stderr,
                     "bad --shard spec '%s' (want decimal i/N with "
                     "0 <= i < N)\n%s",
                     argv[a], kUsage);
        return 2;
      }
    } else if (std::strcmp(argv[a], "--workers") == 0 && a + 1 < argc) {
      long n = 0;
      if (!parse_uint(argv[++a], &n) || n < 1) {
        std::fprintf(stderr, "bad --workers '%s' (want an integer >= 1)\n%s",
                     argv[a], kUsage);
        return 2;
      }
      elastic.workers = static_cast<int>(n);
      workers_flag = true;
    } else if (std::strcmp(argv[a], "--lease-points") == 0 && a + 1 < argc) {
      long k = 0;
      if (!parse_uint(argv[++a], &k) || k < 1) {
        std::fprintf(stderr,
                     "bad --lease-points '%s' (want an integer >= 1)\n%s",
                     argv[a], kUsage);
        return 2;
      }
      elastic.lease_points = static_cast<int>(k);
      elastic_tuning = true;
    } else if (std::strcmp(argv[a], "--heartbeat-ms") == 0 && a + 1 < argc) {
      double ms = 0.0;
      if (!parse_positive(argv[++a], &ms)) {
        std::fprintf(stderr,
                     "bad --heartbeat-ms '%s' (want milliseconds > 0)\n%s",
                     argv[a], kUsage);
        return 2;
      }
      elastic.heartbeat_s = ms / 1e3;
      elastic_tuning = true;
    } else if (std::strcmp(argv[a], "--straggler-factor") == 0 &&
               a + 1 < argc) {
      if (!parse_positive(argv[++a], &elastic.straggler_factor)) {
        std::fprintf(stderr,
                     "bad --straggler-factor '%s' (want a factor > 0)\n%s",
                     argv[a], kUsage);
        return 2;
      }
      elastic_tuning = true;
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
  }

  // Flag-combination validation, all exit 2: the elastic controller owns
  // the whole plan (no --shard), and containment is load-bearing for its
  // convergence argument (a --strict worker that aborted on the first
  // fault-injected point could never drain a poisoned chunk).
  const bool elastic_run = elastic.workers > 1;
  if (workers_flag && opts.shard_count > 1) {
    std::fprintf(stderr, "--workers and --shard are mutually exclusive: the "
                         "elastic controller leases the whole plan\n%s",
                 kUsage);
    return 2;
  }
  if (workers_flag && opts.fail_fast) {
    std::fprintf(stderr, "--workers is incompatible with --strict: elastic "
                         "workers must contain failures as FAIL rows\n%s",
                 kUsage);
    return 2;
  }
  if (elastic_tuning && !workers_flag) {
    std::fprintf(stderr,
                 "--lease-points / --heartbeat-ms / --straggler-factor "
                 "tune the elastic controller; add --workers N\n%s",
                 kUsage);
    return 2;
  }

  // MUSA_TRACE supplies a default trace path when --trace-out is absent —
  // the env route exists so wrappers (CI, sweep_bench) can arm tracing
  // without plumbing a flag through.
  if (trace_out.empty())
    if (const char* env = std::getenv("MUSA_TRACE"))
      trace_out = env;

  try {
    verify::FaultPlan plan = inject_spec != nullptr
                                 ? verify::FaultPlan::parse(inject_spec)
                                 : verify::FaultPlan::from_env();
    if (!plan.empty())
      std::printf("fault injection ARMED: %s\n", plan.str().c_str());
    verify::FaultPlan::install(std::move(plan));
  } catch (const SimError& e) {
    std::fprintf(stderr, "bad fault spec: %s\n", e.what());
    return 2;
  }

  if (bench_sweep) {
    opts.apps = {bench::bench_app()};
    opts.configs = bench::bench_space();
  } else {
    // Full sweep: describe the grid instead of enumerating it, so plan
    // construction goes through the static space analyzer — feasibility is
    // proved box-wise in O(boxes) and the per-point lint pass is skipped.
    // The plan (and therefore the cache) is identical either way:
    // SpaceAxes::paper() enumerates in ConfigSpace::full_space() order.
    opts.axes = core::SpaceAxes::paper();
  }

  core::Pipeline pipeline;
  if (opts.shard_count > 1 && bench::dse_cache_path().empty()) {
    std::fprintf(stderr,
                 "--shard needs a cache path to merge journals into; "
                 "set MUSA_DSE_CACHE\n");
    return 2;
  }
  if (elastic_run && bench::dse_cache_path().empty()) {
    std::fprintf(stderr,
                 "--workers needs a cache path: worker results travel "
                 "through its journals; set MUSA_DSE_CACHE\n");
    return 2;
  }
  if (elastic_run && !sweep::elastic_supported()) {
    std::fprintf(stderr,
                 "--workers needs fork + socketpair; this platform has "
                 "neither — run without it\n");
    return 2;
  }
  // The elastic finalize pass never retries FAIL rows: a --retry-failed
  // elastic run already handed the quarantined keys back to the workers,
  // so retrying again in-process would compute them a third time.
  core::SweepOptions finalize_opts = opts;
  if (elastic_run) finalize_opts.retry_failed = false;
  core::DseEngine dse(pipeline, bench::dse_cache_path(), finalize_opts);

  if (bench_sweep)
    std::printf("MUSA-DSE bench sweep (24 configs x 1 app = 24 points)\n");
  else
    std::printf("MUSA-DSE full sweep (864 configs x 5 apps = 4320 points)\n");
  std::printf("cache file: %s\n", bench::dse_cache_path().c_str());
  if (opts.shard_count > 1)
    std::printf("shard %d of %d\n", opts.shard_index, opts.shard_count);
  if (elastic_run)
    std::printf("elastic controller: %d workers, %d-point leases, "
                "heartbeat %.0fms, straggler factor %.1fx\n",
                elastic.workers, elastic.lease_points,
                elastic.heartbeat_s * 1e3, elastic.straggler_factor);
  if (opts.point_timeout_s > 0.0)
    std::printf("per-point watchdog: %.3gs\n", opts.point_timeout_s);
  if (!trace_out.empty()) {
    obs::Tracer::install();
    if (metrics_out.empty()) {
      const std::string& cache = bench::dse_cache_path();
      metrics_out = (cache.empty() ? trace_out : cache) + ".metrics.json";
    }
    std::printf("tracing ARMED: spans -> %s, metrics -> %s\n",
                trace_out.c_str(), metrics_out.c_str());
  }
  if (!opts.verify)
    std::printf("verification DISABLED (--no-verify): configs and results "
                "will not be checked; lint the cache with dse_lint later\n");

  core::SweepReport rep;
  try {
    if (elastic_run) {
      // Lease phase first: workers resolve every pending key into durable
      // journal rows. --force must discard *before* the controller runs or
      // the finalize sweep would throw the workers' journals away.
      if (force) dse.clear_cache();
      elastic.trace_path = trace_out;
      sweep::ElasticController controller(pipeline, bench::dse_cache_path(),
                                          opts, elastic);
      print_elastic(controller.run());
      // Finalize: a plain in-process sweep merges the worker journals,
      // recomputes any residue, and writes the cache — the same authority
      // a fault-free single-process run ends with.
      rep = dse.sweep(/*force=*/false);
    } else {
      rep = dse.sweep(force);
    }
  } catch (const SimError& e) {
    std::fprintf(stderr, "sweep aborted%s: %s\n",
                 opts.fail_fast ? " (--strict)" : "", e.what());
    return 1;
  }
  print_report(rep);
  print_quarantine(rep);
  // Export before any early exit: quarantined and shard-partial runs are
  // exactly the ones whose timelines are worth inspecting.
  export_observability(trace_out, metrics_out, rep, opts);
  if (rep.quarantined > 0) return 3;
  if (!rep.finalized) {
    std::printf("shard journal written; rerun (any shard spec, or none) "
                "once every shard has finished to merge the cache\n");
    return 0;
  }

  const auto& results = dse.results();
  std::printf("sweep complete: %zu simulation results available\n",
              results.size());

  // Quick integrity summary: per-app result counts and time ranges.
  for (const auto& app : apps::registry()) {
    double tmin = 1e30, tmax = 0;
    int n = 0;
    for (const auto& r : results) {
      if (r.app != app.name) continue;
      ++n;
      tmin = std::min(tmin, r.wall_seconds);
      tmax = std::max(tmax, r.wall_seconds);
    }
    if (n == 0) continue;  // app not in this plan (--bench sweeps one app)
    std::printf("  %-8s %4d points, wall time %8.2f .. %8.2f ms\n",
                app.name.c_str(), n, tmin * 1e3, tmax * 1e3);
  }
  return 0;
}
