// Runs (or refreshes) the full 864-configuration × 5-application design
// space sweep and writes the shared result cache consumed by the figure
// benches. Pass --force to discard an existing cache.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "fig_common.hpp"

int main(int argc, char** argv) {
  using namespace musa;
  const bool force = argc > 1 && std::strcmp(argv[1], "--force") == 0;

  core::Pipeline pipeline;
  core::DseEngine dse(pipeline, bench::dse_cache_path());

  std::printf("MUSA-DSE full sweep (864 configs x 5 apps = 4320 points)\n");
  std::printf("cache file: %s\n", bench::dse_cache_path().c_str());
  if (force) {
    dse.recompute();
  }
  const auto& results = dse.results();
  std::printf("sweep complete: %zu simulation results available\n",
              results.size());

  // Quick integrity summary: per-app result counts and time ranges.
  for (const auto& app : apps::registry()) {
    double tmin = 1e30, tmax = 0;
    int n = 0;
    for (const auto& r : results) {
      if (r.app != app.name) continue;
      ++n;
      tmin = std::min(tmin, r.wall_seconds);
      tmax = std::max(tmax, r.wall_seconds);
    }
    std::printf("  %-8s %4d points, wall time %8.2f .. %8.2f ms\n",
                app.name.c_str(), n, tmin * 1e3, tmax * 1e3);
  }
  return 0;
}
