// Ablation study of the simulator's own design choices (DESIGN.md §8):
//
//   (1) stream prefetcher on/off — shows why strided codes are bandwidth-
//       rather than latency-bound (the Fig. 7/8 distinction hinges on it);
//   (2) vector-fusion window — the "executed several times in a row"
//       requirement of the paper's SIMD model: a tiny window collapses
//       wide-vector gains to the inner-loop trip count;
//   (3) runtime scheduler policy — FIFO vs LPT vs SPT on each app's region
//       at 64 cores (imbalance tolerance of the simulated runtime);
//   (4) network topology — crossbar vs bus vs 2-D torus vs fat-tree on the
//       full-application wall time (the paper's claim that raw message
//       passing is a minor overhead holds only on an adequate network).
#include <cstdio>

#include "apps/apps.hpp"
#include "cachesim/hierarchy.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"
#include "cpusim/core_model.hpp"
#include "cpusim/runtime.hpp"
#include "dramsim/dram.hpp"
#include "isa/vector_fusion.hpp"
#include "netsim/dimemas.hpp"
#include "trace/kernel.hpp"

namespace {
using namespace musa;

// Scaled-down detail run mirroring the pipeline's reduced-scale settings.
cpusim::CoreStats detail_run(const apps::AppModel& app, int vector_bits,
                             bool prefetch) {
  auto caches = cachesim::cache_32m_256k(1);
  caches.l1.size_bytes /= 4;
  caches.l2.size_bytes /= 8;
  caches.l3.size_bytes = caches.l3.size_bytes / 8 / 40;
  trace::KernelProfile prof = app.kernel;
  prof.vec_ws_bytes /= 8;
  for (auto& s : prof.streams)
    s.ws_bytes = std::max<std::uint64_t>(256, s.ws_bytes / 8);
  cachesim::MemHierarchy hierarchy(caches);
  auto timing = dramsim::ddr4_2333();
  timing.bytes_per_clock /= 40;
  dramsim::DramSystem dram(timing, 4);
  trace::KernelSource src(prof, 480'000, 7919 + 17);
  // Functional warm-up.
  isa::Instr in;
  for (int i = 0; i < 320'000 && src.next(in); ++i)
    if (isa::is_mem(in.op))
      hierarchy.access(0, in.addr, in.op == isa::OpClass::kStore);
  hierarchy.reset_stats();
  cpusim::CoreModel core(cpusim::core_medium(), {2.0}, hierarchy, dram);
  return core.run(src, {.vector_bits = vector_bits,
                        .enable_prefetcher = prefetch});
}

void ablate_prefetcher() {
  std::printf("(1) stream prefetcher (medium core, 2 GHz, per-core share)\n");
  TextTable t({"app", "CPI off", "CPI on", "speed-up from prefetch"});
  for (const auto& app : apps::registry()) {
    const auto off = detail_run(app, 128, false);
    const auto on = detail_run(app, 128, true);
    const double cpi_off = off.cycles / off.scalar_instrs;
    const double cpi_on = on.cycles / on.scalar_instrs;
    t.row().cell(app.name).cell(cpi_off, 3).cell(cpi_on, 3).cell(
        cpi_off / cpi_on, 2);
  }
  std::printf("%s\n", t.str().c_str());
}

void ablate_fusion_window() {
  std::printf(
      "(2) vector-fusion window (spmz, 512-bit): fused fraction vs window\n");
  const auto& app = apps::find_app("spmz");
  TextTable t({"window [instrs]", "full groups", "partial flushes",
               "ops emitted"});
  for (std::uint64_t window : {8ull, 64ull, 512ull, 4096ull, 32768ull}) {
    trace::KernelSource src(app.kernel, 50'000);
    isa::VectorFusion fusion(src, 512, 64, window);
    isa::FusedInstr op;
    while (fusion.next(op)) {
    }
    t.row()
        .cell(static_cast<long long>(window))
        .cell(static_cast<long long>(fusion.stats().full_groups))
        .cell(static_cast<long long>(fusion.stats().partial_flushes))
        .cell(static_cast<long long>(fusion.stats().out_instrs));
  }
  std::printf("%s\n", t.str().c_str());
}

void ablate_scheduler() {
  std::printf("(3) runtime scheduler policy (64 cores, region makespan)\n");
  TextTable t({"app", "fifo [ms]", "lpt [ms]", "spt [ms]", "lpt gain"});
  const std::vector<cpusim::TaskTiming> timing = {
      {.seconds_per_work = 20e-6, .mem_stall_frac = 0.0, .dram_gbps = 0.0}};
  for (const auto& app : apps::registry()) {
    const trace::Region region = apps::make_region(app);
    cpusim::RuntimeSim sim;
    double results[3] = {};
    int i = 0;
    for (auto policy : {cpusim::SchedPolicy::kFifo, cpusim::SchedPolicy::kLpt,
                        cpusim::SchedPolicy::kSpt}) {
      cpusim::RuntimeConfig cfg;
      cfg.cores = 64;
      cfg.dispatch_overhead_s = app.dispatch_overhead_s;
      cfg.policy = policy;
      results[i++] = sim.run(region, timing, cfg).seconds;
    }
    t.row()
        .cell(app.name)
        .cell(results[0] * 1e3, 3)
        .cell(results[1] * 1e3, 3)
        .cell(results[2] * 1e3, 3)
        .cell(results[0] / results[1], 3);
  }
  std::printf("%s\n", t.str().c_str());
}

void ablate_topology() {
  std::printf("(4) network topology (full app, 256 ranks x 64 cores)\n");
  TextTable t({"app", "crossbar [ms]", "fat-tree [ms]", "torus2d [ms]",
               "bus [ms]"});
  for (const auto& app : apps::registry()) {
    t.row().cell(app.name);
    for (auto topo : {netsim::Topology::kCrossbar, netsim::Topology::kFatTree,
                      netsim::Topology::kTorus2D, netsim::Topology::kBus}) {
      core::PipelineOptions opts;
      opts.network.topology = topo;
      core::Pipeline pipeline(opts);
      const core::BurstResult r = pipeline.run_burst(app, 64, 256);
      t.cell(r.wall_seconds * 1e3, 2);
    }
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "On crossbar/fat-tree/torus the wall times barely move — transfer is\n"
      "a minor overhead, as the paper observes on MareNostrum. A single\n"
      "shared bus, by contrast, serialises the halo exchange.\n");
}

}  // namespace

int main() {
  std::printf("MUSA-DSE model ablations\n\n");
  ablate_prefetcher();
  ablate_fusion_window();
  ablate_scheduler();
  ablate_topology();
  return 0;
}
