// Multi-region application: MUSA tags every compute burst with its region
// id and simulates each region's kernel separately (paper §II identifies
// "the different computation phases for each rank"). This example builds a
// two-phase CFD-style timestep:
//
//   region 0 — flux computation: compute-bound, vectorisable, many tasks;
//   region 1 — implicit boundary solve: irregular, memory-latency-bound,
//              few coarse tasks.
//
// and shows how the two regions respond differently to the same node, which
// no single-phase model can capture.
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace musa;

  apps::AppModel cfd;
  cfd.name = "minicfd";

  // --- Region 0 (primary): flux sweeps -------------------------------------
  cfd.kernel.name = "flux_sweep";
  cfd.kernel.vec_body = {.loads = 3, .fp_add = 3, .fp_mul = 3, .stores = 1};
  cfd.kernel.vec_trip = 48;
  cfd.kernel.vec_ws_bytes = 128 * kKiB;
  cfd.kernel.scalar_tail = {.int_alu = 20, .int_mul = 1, .fp_add = 8,
                            .fp_mul = 8, .fp_div = 1, .loads = 24,
                            .stores = 10, .branches = 5};
  cfd.kernel.ilp_chains = 6;
  cfd.kernel.streams = {
      {.share = 0.20, .ws_bytes = 48 * kKiB, .stride = 64},
      {.share = 0.80, .ws_bytes = 24 * kKiB, .stride = 8},
  };
  cfd.task_instrs = 300e3;
  cfd.tasks_per_region = 512;
  cfd.task_imbalance = 0.06;
  cfd.ref_region_seconds = 10e-3;

  // --- Region 1: implicit boundary solve -----------------------------------
  apps::Phase solve;
  solve.name = "boundary_solve";
  solve.kernel.name = "boundary_solve";
  solve.kernel.vec_trip = 0;  // not vectorisable
  solve.kernel.scalar_tail = {.int_alu = 40, .int_mul = 3, .fp_add = 30,
                              .fp_mul = 30, .fp_div = 4, .loads = 60,
                              .stores = 20, .branches = 12};
  solve.kernel.ilp_chains = 1;  // long solver recurrences
  solve.kernel.streams = {
      {.share = 0.10, .ws_bytes = 2 * kMiB, .stride = 0},  // irregular
      {.share = 0.90, .ws_bytes = 24 * kKiB, .stride = 8},
  };
  solve.task_instrs = 1.2e6;
  solve.tasks_per_region = 24;  // few coarse solver tasks
  solve.task_imbalance = 0.20;
  solve.ref_region_seconds = 6e-3;
  cfd.extra_phases.push_back(solve);

  // MPI structure.
  cfd.iterations = 8;
  cfd.rank_imbalance = 0.05;
  cfd.p2p_bytes = 512 * 1024;
  cfd.allreduce = true;
  cfd.barrier = false;

  std::printf("Two-region application '%s' (%zu regions per timestep)\n\n",
              cfd.name.c_str(), cfd.phases().size());

  core::Pipeline pipeline;

  // Per-region hardware-agnostic scaling: the flux region scales, the
  // boundary solve does not — visible only with per-region modelling.
  std::printf("hardware-agnostic region scaling (speed-up vs 1 core):\n");
  TextTable scaling({"cores", "whole timestep", "note"});
  const core::BurstResult serial = pipeline.run_burst(cfd, 1, 64);
  for (int cores : {16, 32, 64}) {
    const core::BurstResult b = pipeline.run_burst(cfd, cores, 64);
    scaling.row()
        .cell(static_cast<long long>(cores))
        .cell(serial.region_seconds / b.region_seconds, 1)
        .cell(cores > 24 ? "solve region saturated (24 tasks)" : "");
  }
  std::printf("%s\n", scaling.str().c_str());

  std::printf("full pipeline across vector widths (the flux region is the\n"
              "only vectorisable one, capping the whole-app gain):\n");
  TextTable t({"machine", "region ms", "wall ms", "node W"});
  for (int vec : {128, 256, 512}) {
    core::MachineConfig config;
    config.cores = 64;
    config.vector_bits = vec;
    config.ranks = 64;
    const core::SimResult r = pipeline.run(cfd, config);
    t.row()
        .cell("64c / " + std::to_string(vec) + "b")
        .cell(r.region_seconds * 1e3, 3)
        .cell(r.wall_seconds * 1e3, 2)
        .cell(r.node_w, 1);
  }
  std::printf("%s", t.str().c_str());
  return 0;
}
