// Capacity planning: for a fixed total-core budget, is it better to deploy
// many thin nodes or few fat ones? (§I: "finding the right ratio between
// the number of nodes and the number of processing units per node is a
// primary design decision".)
//
// Compares 512 ranks x 32 cores against 256 ranks x 64 cores (both 16,384
// cores) for every application, at the Table I midpoint node.
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace musa;
  core::Pipeline pipeline;

  std::printf(
      "Capacity planning: 16,384 cores as 512x32 vs 256x64 (midpoint "
      "node)\n\n");

  TextTable t({"app", "512 ranks x 32c [ms]", "256 ranks x 64c [ms]",
               "fat-node speed-up", "verdict"});
  for (const auto& app : apps::registry()) {
    core::MachineConfig thin;
    thin.cores = 32;
    thin.ranks = 512;
    core::MachineConfig fat;
    fat.cores = 64;
    fat.ranks = 256;

    const core::SimResult a = pipeline.run(app, thin);
    const core::SimResult b = pipeline.run(app, fat);
    const double gain = a.wall_seconds / b.wall_seconds;
    t.row()
        .cell(app.name)
        .cell(a.wall_seconds * 1e3, 2)
        .cell(b.wall_seconds * 1e3, 2)
        .cell(gain, 2)
        .cell(gain > 1.05   ? "fat nodes"
              : gain < 0.95 ? "thin nodes"
                            : "either");
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "Codes whose regions lack task parallelism (spec3d) or are\n"
      "bandwidth-bound (lulesh) cannot use fat nodes; strongly scaling\n"
      "codes (hydro) prefer them because MPI surface shrinks.\n");
  return 0;
}
