// Trace tooling: record, inspect and replay MUSA trace files — the
// trace-once-simulate-everywhere workflow at the heart of the methodology.
//
//   trace_tools record <app> <dir>    write burst/region/instruction traces
//   trace_tools info <file>           one-line summary of any trace file
//   trace_tools replay <instr-trace>  run one stored kernel trace through
//                                     three machine configurations
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/apps.hpp"
#include "cachesim/hierarchy.hpp"
#include "common/table.hpp"
#include "cpusim/core_model.hpp"
#include "dramsim/dram.hpp"
#include "trace/kernel.hpp"
#include "trace/trace_io.hpp"

namespace {
using namespace musa;

int record(const std::string& app_name, const std::string& dir) {
  const apps::AppModel& app = apps::find_app(app_name);
  const std::string burst_path = dir + "/" + app_name + ".burst";
  const std::string region_path = dir + "/" + app_name + ".region";
  const std::string instr_path = dir + "/" + app_name + ".instr";

  trace::save_app_trace(apps::make_burst_trace(app, 256), burst_path);
  trace::save_region(apps::make_region(app), region_path);
  trace::KernelSource source(app.kernel, 200'000);
  const std::uint64_t n = trace::spool_instr_trace(source, instr_path);

  std::printf("recorded %s:\n", app_name.c_str());
  std::printf("  %s  (%s)\n", burst_path.c_str(),
              trace::describe_trace_file(burst_path).c_str());
  std::printf("  %s  (%s)\n", region_path.c_str(),
              trace::describe_trace_file(region_path).c_str());
  std::printf("  %s  (%llu records)\n", instr_path.c_str(),
              static_cast<unsigned long long>(n));
  return 0;
}

int info(const std::string& path) {
  std::printf("%s: %s\n", path.c_str(),
              trace::describe_trace_file(path).c_str());
  return 0;
}

int replay(const std::string& path) {
  std::printf("replaying %s across three machines\n\n", path.c_str());
  TextTable t({"machine", "IPC", "L1 MPKI", "L3 MPKI", "DRAM GB/s"});
  struct Machine {
    const char* label;
    cpusim::CoreConfig core;
    int vec;
  };
  const Machine machines[] = {
      {"lowend / 128b", cpusim::core_low_end(), 128},
      {"medium / 256b", cpusim::core_medium(), 256},
      {"aggressive / 512b", cpusim::core_aggressive(), 512},
  };
  for (const auto& m : machines) {
    trace::FileInstrSource source(path);  // same file, every machine
    cachesim::MemHierarchy hierarchy(cachesim::cache_32m_256k(1));
    dramsim::DramSystem dram(dramsim::ddr4_2333(), 4);
    cpusim::CoreModel core(m.core, {2.0}, hierarchy, dram);
    const cpusim::CoreStats s = core.run(source, {.vector_bits = m.vec});
    t.row()
        .cell(m.label)
        .cell(s.ipc(), 2)
        .cell(s.mpki_l1(), 2)
        .cell(s.mpki_l3(), 2)
        .cell(s.dram_gbps({2.0}), 2);
  }
  std::printf("%s", t.str().c_str());
  std::printf(
      "\nOne stored trace drives every architecture — the amortisation that\n"
      "makes an 864-point design-space sweep tractable (paper §II).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: trace_tools record <app> <dir>\n"
                 "       trace_tools info <file>\n"
                 "       trace_tools replay <instr-trace>\n");
    return 2;
  };
  if (argc < 3) return usage();
  try {
    if (std::strcmp(argv[1], "record") == 0 && argc == 4)
      return record(argv[2], argv[3]);
    if (std::strcmp(argv[1], "info") == 0) return info(argv[2]);
    if (std::strcmp(argv[1], "replay") == 0) return replay(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
