// Defining a brand-new application model with the public API and running it
// through the full multiscale pipeline — the extension path a MUSA user
// takes to study a code the library does not ship.
//
// The example models a 27-point stencil code: strongly vectorisable inner
// loops over L2-resident tiles, a DRAM-streaming flux array, halo exchange
// with two neighbours and an Allreduce per step.
#include <cstdio>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace musa;

  apps::AppModel stencil;
  stencil.name = "stencil27";

  // Detailed-kernel statistics (what a DynamoRIO trace would show).
  stencil.kernel.name = "stencil27_sweep";
  stencil.kernel.vec_body = {.loads = 3, .fp_add = 3, .fp_mul = 2,
                             .stores = 1};
  stencil.kernel.vec_trip = 32;          // long unit-stride inner loops
  stencil.kernel.vec_ws_bytes = 128 * kKiB;  // tile fits a 256 kB L2
  stencil.kernel.scalar_tail = {.int_alu = 24, .int_mul = 2, .fp_add = 8,
                                .fp_mul = 8, .fp_div = 1, .loads = 20,
                                .stores = 10, .branches = 6};
  stencil.kernel.ilp_chains = 6;
  stencil.kernel.streams = {
      {.share = 0.08, .ws_bytes = 64 * kKiB, .stride = 64},   // plane reuse
      {.share = 0.03, .ws_bytes = 192 * kMiB, .stride = 64},  // flux stream
      {.share = 0.89, .ws_bytes = 24 * kKiB, .stride = 8},    // registerised
  };

  // Task-level structure of one timestep.
  stencil.task_instrs = 200e3;
  stencil.tasks_per_region = 512;
  stencil.task_imbalance = 0.08;
  stencil.ref_region_seconds = 16e-3;

  // MPI structure.
  stencil.iterations = 8;
  stencil.rank_imbalance = 0.04;
  stencil.p2p_neighbors = 2;
  stencil.p2p_bytes = 512 * 1024;
  stencil.allreduce = true;
  stencil.allreduce_bytes = 8;
  stencil.barrier = false;

  core::Pipeline pipeline;
  std::printf("Custom application '%s' through the MUSA pipeline\n\n",
              stencil.name.c_str());

  TextTable t({"machine", "region ms", "wall ms", "node W", "energy J",
               "GB/s"});
  for (int cores : {32, 64}) {
    for (int vec : {128, 512}) {
      core::MachineConfig config;
      config.cores = cores;
      config.vector_bits = vec;
      const core::SimResult r = pipeline.run(stencil, config);
      t.row()
          .cell(std::to_string(cores) + "c / " + std::to_string(vec) + "b")
          .cell(r.region_seconds * 1e3, 3)
          .cell(r.wall_seconds * 1e3, 2)
          .cell(r.node_w, 1)
          .cell(r.energy_j, 2)
          .cell(r.mem_gbps, 1);
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Scaling curve, burst (hardware-agnostic) mode.
  std::printf("hardware-agnostic scaling of one compute region:\n");
  const core::BurstResult serial = pipeline.run_burst(stencil, 1, 256);
  for (int cores : {8, 16, 32, 64}) {
    const core::BurstResult b = pipeline.run_burst(stencil, cores, 256);
    std::printf("  %2d cores: %5.1fx (efficiency %.0f%%)\n", cores,
                serial.region_seconds / b.region_seconds,
                100.0 * serial.region_seconds / b.region_seconds / cores);
  }
  return 0;
}
