// Co-design study: for one application, sweep a focused slice of the design
// space and report the Pareto-best configurations by performance, by energy,
// and by energy-delay product — the workflow §V of the paper motivates for
// system architects.
//
//   ./examples/codesign_study [app]      (default: btmz)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/config_space.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace musa;
  const std::string app_name = argc > 1 ? argv[1] : "btmz";
  const apps::AppModel& app = apps::find_app(app_name);

  std::printf("Co-design study for %s (64-core nodes, 256 ranks)\n\n",
              app.name.c_str());

  core::Pipeline pipeline;

  struct Point {
    core::MachineConfig config;
    core::SimResult result;
  };
  std::vector<Point> points;

  // A focused slice: all OoO classes x vector widths x cache configs at the
  // 2 GHz / 4-channel midpoint (36 simulations).
  for (const auto& core_cfg : cpusim::core_presets()) {
    for (int vec : core::ConfigSpace::vector_widths()) {
      for (const auto& cache : core::ConfigSpace::cache_labels()) {
        core::MachineConfig c;
        c.core = core_cfg;
        c.vector_bits = vec;
        c.cache_label = cache;
        c.cores = 64;
        c.freq_ghz = 2.0;
        points.push_back({c, pipeline.run(app, c)});
      }
    }
  }

  auto by = [&](auto metric) {
    return *std::min_element(points.begin(), points.end(),
                             [&](const Point& a, const Point& b) {
                               return metric(a.result) < metric(b.result);
                             });
  };
  const Point fastest =
      by([](const core::SimResult& r) { return r.region_seconds; });
  const Point frugal =
      by([](const core::SimResult& r) { return r.node_w * r.region_seconds; });
  const Point edp = by([](const core::SimResult& r) {
    return r.node_w * r.region_seconds * r.region_seconds;
  });

  TextTable t({"objective", "core", "vector", "cache", "region ms", "node W",
               "energy J"});
  auto add = [&](const char* label, const Point& p) {
    t.row()
        .cell(label)
        .cell(p.config.core.label)
        .cell(std::to_string(p.config.vector_bits) + "b")
        .cell(p.config.cache_label)
        .cell(p.result.region_seconds * 1e3, 3)
        .cell(p.result.node_w, 1)
        .cell(p.result.node_w * p.result.region_seconds, 2);
  };
  add("fastest", fastest);
  add("least energy", frugal);
  add("best EDP", edp);
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "Across the %zu-point slice, the spread is %.2fx in time and %.2fx in"
      " energy —\nthe co-design headroom the paper quantifies.\n",
      points.size(),
      by([](const core::SimResult& r) { return -r.region_seconds; })
              .result.region_seconds /
          fastest.result.region_seconds,
      by([](const core::SimResult& r) {
        return -r.node_w * r.region_seconds;
      }).result.node_w *
          by([](const core::SimResult& r) {
            return -r.node_w * r.region_seconds;
          }).result.region_seconds /
          (frugal.result.node_w * frugal.result.region_seconds));
  return 0;
}
