// Quickstart: simulate one application on one machine configuration with
// the full MUSA multiscale pipeline and print every produced metric.
//
//   ./examples/quickstart [app] [cores]
//
// Defaults: lulesh on a 64-core node (medium OoO, 32M:256K caches, 2 GHz,
// 128-bit SIMD, 4 DDR4 channels, 256 MPI ranks).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/dse.hpp"
#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace musa;

  const std::string app_name = argc > 1 ? argv[1] : "lulesh";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 64;

  const apps::AppModel& app = apps::find_app(app_name);

  core::MachineConfig config;  // Table I midpoint
  config.cores = cores;

  std::printf("MUSA-DSE quickstart\n");
  std::printf("  application : %s\n", app.name.c_str());
  std::printf("  machine     : %s\n\n", config.id().c_str());

  core::Pipeline pipeline;

  // Hardware-agnostic scaling first (paper §V-A).
  const core::BurstResult serial = pipeline.run_burst(app, 1, config.ranks);
  const core::BurstResult burst =
      pipeline.run_burst(app, cores, config.ranks);
  std::printf("burst (hardware-agnostic) mode:\n");
  std::printf("  region speed-up  %2d cores : %6.2fx (efficiency %.0f%%)\n",
              cores, serial.region_seconds / burst.region_seconds,
              100.0 * serial.region_seconds / burst.region_seconds / cores);
  std::printf("  full app speed-up %2d cores: %6.2fx\n\n", cores,
              serial.wall_seconds / burst.wall_seconds);

  // Full multiscale simulation.
  const core::SimResult r = pipeline.run(app, config);

  TextTable t({"metric", "value", "unit"});
  t.row().cell("compute region").cell(r.region_seconds * 1e3, 3).cell("ms");
  t.row().cell("application wall time").cell(r.wall_seconds * 1e3, 3).cell(
      "ms");
  t.row().cell("single-core IPC").cell(r.ipc, 2).cell("instr/cycle");
  t.row().cell("avg concurrency").cell(r.avg_concurrency, 1).cell("cores");
  t.row().cell("busy fraction").cell(100.0 * r.busy_fraction, 1).cell("%");
  t.row().cell("BW contention factor").cell(r.contention_factor, 2).cell(
      "x");
  t.row().cell("L1 MPKI").cell(r.mpki_l1, 2).cell("miss/kinstr");
  t.row().cell("L2 MPKI").cell(r.mpki_l2, 2).cell("miss/kinstr");
  t.row().cell("L3 MPKI").cell(r.mpki_l3, 2).cell("miss/kinstr");
  t.row().cell("DRAM requests").cell(r.gmem_req_s, 3).cell("Greq/s");
  t.row().cell("DRAM bandwidth").cell(r.mem_gbps, 1).cell("GB/s");
  t.row().cell("power: Core+L1").cell(r.core_l1_w, 1).cell("W");
  t.row().cell("power: L2+L3").cell(r.l2_l3_w, 1).cell("W");
  t.row().cell("power: Memory").cell(r.dram_w, 1).cell("W");
  t.row().cell("power: node total").cell(r.node_w, 1).cell("W");
  t.row().cell("energy to solution").cell(r.energy_j, 1).cell("J/node");
  std::printf("%s\n", t.str().c_str());
  return 0;
}
