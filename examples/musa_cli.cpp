// Command-line driver: run any (application, machine) point through the
// full multiscale pipeline from flags, printing a table or JSON.
//
//   musa_cli --app lulesh --cores 64 --freq 2.5 --vec 512 \
//            --cache 96M:1M --channels 8 --tech DDR4-2333 --ranks 256 [--json]
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/apps.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

namespace {
using namespace musa;

void print_json(const core::SimResult& r) {
  std::printf("{\n");
  std::printf("  \"app\": \"%s\",\n", r.app.c_str());
  std::printf("  \"config\": \"%s\",\n", r.config.id().c_str());
  std::printf("  \"region_seconds\": %.9g,\n", r.region_seconds);
  std::printf("  \"wall_seconds\": %.9g,\n", r.wall_seconds);
  std::printf("  \"ipc\": %.4f,\n", r.ipc);
  std::printf("  \"avg_concurrency\": %.2f,\n", r.avg_concurrency);
  std::printf("  \"busy_fraction\": %.4f,\n", r.busy_fraction);
  std::printf("  \"mpki\": {\"l1\": %.3f, \"l2\": %.3f, \"l3\": %.3f},\n",
              r.mpki_l1, r.mpki_l2, r.mpki_l3);
  std::printf("  \"gmem_req_s\": %.4f,\n", r.gmem_req_s);
  std::printf("  \"mem_gbps\": %.2f,\n", r.mem_gbps);
  std::printf(
      "  \"power_w\": {\"core_l1\": %.2f, \"l2_l3\": %.2f, \"dram\": %.2f, "
      "\"node\": %.2f},\n",
      r.core_l1_w, r.l2_l3_w, r.dram_w, r.node_w);
  std::printf("  \"dram_power_known\": %s,\n",
              r.dram_power_known ? "true" : "false");
  std::printf("  \"energy_j\": %.4f\n", r.energy_j);
  std::printf("}\n");
}

void print_table(const core::SimResult& r) {
  std::printf("%s on %s\n\n", r.app.c_str(), r.config.id().c_str());
  TextTable t({"metric", "value"});
  t.row().cell("region [ms]").cell(r.region_seconds * 1e3, 3);
  t.row().cell("wall [ms]").cell(r.wall_seconds * 1e3, 3);
  t.row().cell("IPC").cell(r.ipc, 2);
  t.row().cell("concurrency").cell(r.avg_concurrency, 1);
  t.row().cell("L1/L2/L3 MPKI").cell(
      std::to_string(r.mpki_l1).substr(0, 5) + " / " +
      std::to_string(r.mpki_l2).substr(0, 5) + " / " +
      std::to_string(r.mpki_l3).substr(0, 5));
  t.row().cell("DRAM [GB/s]").cell(r.mem_gbps, 1);
  t.row().cell("node power [W]").cell(r.node_w, 1);
  t.row().cell("energy [J]").cell(r.energy_j, 2);
  std::printf("%s", t.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string app_name = "hydro";
  core::MachineConfig config;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--app") {
      app_name = value();
    } else if (flag == "--cores") {
      config.cores = std::stoi(value());
    } else if (flag == "--freq") {
      config.freq_ghz = std::stod(value());
    } else if (flag == "--vec") {
      config.vector_bits = std::stoi(value());
    } else if (flag == "--cache") {
      config.cache_label = value();
    } else if (flag == "--channels") {
      config.mem_channels = std::stoi(value());
    } else if (flag == "--ranks") {
      config.ranks = std::stoi(value());
    } else if (flag == "--core") {
      const std::string label = value();
      bool found = false;
      for (const auto& preset : musa::cpusim::core_presets())
        if (preset.label == label) {
          config.core = preset;
          found = true;
        }
      if (!found) {
        std::fprintf(stderr, "unknown core preset: %s\n", label.c_str());
        return 2;
      }
    } else if (flag == "--tech") {
      const std::string name = value();
      bool found = false;
      for (auto t : {musa::dramsim::MemTech::kDdr4_2333,
                     musa::dramsim::MemTech::kDdr4_2666,
                     musa::dramsim::MemTech::kLpddr4_3200,
                     musa::dramsim::MemTech::kWideIo2,
                     musa::dramsim::MemTech::kHbm2})
        if (name == musa::dramsim::mem_tech_name(t)) {
          config.mem_tech = t;
          found = true;
        }
      if (!found) {
        std::fprintf(stderr, "unknown memory tech: %s\n", name.c_str());
        return 2;
      }
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--help" || flag == "-h") {
      std::printf(
          "usage: musa_cli [--app NAME] [--core lowend|medium|high|"
          "aggressive]\n"
          "  [--cores N] [--freq GHZ] [--vec BITS] [--cache LABEL]\n"
          "  [--channels N] [--tech NAME] [--ranks N] [--json]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", flag.c_str());
      return 2;
    }
  }

  try {
    musa::core::Pipeline pipeline;
    const auto result =
        pipeline.run(musa::apps::find_app(app_name), config);
    if (json)
      print_json(result);
    else
      print_table(result);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
