file(REMOVE_RECURSE
  "CMakeFiles/musa_cli.dir/musa_cli.cpp.o"
  "CMakeFiles/musa_cli.dir/musa_cli.cpp.o.d"
  "musa_cli"
  "musa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
