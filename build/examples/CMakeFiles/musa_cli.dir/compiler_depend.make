# Empty compiler generated dependencies file for musa_cli.
# This may be replaced when dependencies are built.
