# Empty compiler generated dependencies file for codesign_study.
# This may be replaced when dependencies are built.
