file(REMOVE_RECURSE
  "CMakeFiles/codesign_study.dir/codesign_study.cpp.o"
  "CMakeFiles/codesign_study.dir/codesign_study.cpp.o.d"
  "codesign_study"
  "codesign_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codesign_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
