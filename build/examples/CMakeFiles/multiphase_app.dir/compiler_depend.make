# Empty compiler generated dependencies file for multiphase_app.
# This may be replaced when dependencies are built.
