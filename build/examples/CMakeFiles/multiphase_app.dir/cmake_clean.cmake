file(REMOVE_RECURSE
  "CMakeFiles/multiphase_app.dir/multiphase_app.cpp.o"
  "CMakeFiles/multiphase_app.dir/multiphase_app.cpp.o.d"
  "multiphase_app"
  "multiphase_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiphase_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
