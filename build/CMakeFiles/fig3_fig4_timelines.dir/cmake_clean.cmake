file(REMOVE_RECURSE
  "CMakeFiles/fig3_fig4_timelines.dir/bench/fig3_fig4_timelines.cpp.o"
  "CMakeFiles/fig3_fig4_timelines.dir/bench/fig3_fig4_timelines.cpp.o.d"
  "bench/fig3_fig4_timelines"
  "bench/fig3_fig4_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fig4_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
