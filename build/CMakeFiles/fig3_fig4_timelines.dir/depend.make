# Empty dependencies file for fig3_fig4_timelines.
# This may be replaced when dependencies are built.
