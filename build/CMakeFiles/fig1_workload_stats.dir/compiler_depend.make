# Empty compiler generated dependencies file for fig1_workload_stats.
# This may be replaced when dependencies are built.
