file(REMOVE_RECURSE
  "CMakeFiles/fig1_workload_stats.dir/bench/fig1_workload_stats.cpp.o"
  "CMakeFiles/fig1_workload_stats.dir/bench/fig1_workload_stats.cpp.o.d"
  "bench/fig1_workload_stats"
  "bench/fig1_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
