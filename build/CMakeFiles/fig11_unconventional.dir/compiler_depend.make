# Empty compiler generated dependencies file for fig11_unconventional.
# This may be replaced when dependencies are built.
