file(REMOVE_RECURSE
  "CMakeFiles/fig11_unconventional.dir/bench/fig11_unconventional.cpp.o"
  "CMakeFiles/fig11_unconventional.dir/bench/fig11_unconventional.cpp.o.d"
  "bench/fig11_unconventional"
  "bench/fig11_unconventional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_unconventional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
