# Empty compiler generated dependencies file for fig7_ooo.
# This may be replaced when dependencies are built.
