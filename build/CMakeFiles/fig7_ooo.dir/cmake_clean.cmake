file(REMOVE_RECURSE
  "CMakeFiles/fig7_ooo.dir/bench/fig7_ooo.cpp.o"
  "CMakeFiles/fig7_ooo.dir/bench/fig7_ooo.cpp.o.d"
  "bench/fig7_ooo"
  "bench/fig7_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
