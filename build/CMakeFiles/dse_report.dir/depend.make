# Empty dependencies file for dse_report.
# This may be replaced when dependencies are built.
