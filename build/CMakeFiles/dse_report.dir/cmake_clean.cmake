file(REMOVE_RECURSE
  "CMakeFiles/dse_report.dir/bench/dse_report.cpp.o"
  "CMakeFiles/dse_report.dir/bench/dse_report.cpp.o.d"
  "bench/dse_report"
  "bench/dse_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
