# Empty compiler generated dependencies file for run_dse.
# This may be replaced when dependencies are built.
