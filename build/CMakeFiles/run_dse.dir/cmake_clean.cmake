file(REMOVE_RECURSE
  "CMakeFiles/run_dse.dir/bench/run_dse.cpp.o"
  "CMakeFiles/run_dse.dir/bench/run_dse.cpp.o.d"
  "bench/run_dse"
  "bench/run_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
