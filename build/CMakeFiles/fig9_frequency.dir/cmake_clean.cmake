file(REMOVE_RECURSE
  "CMakeFiles/fig9_frequency.dir/bench/fig9_frequency.cpp.o"
  "CMakeFiles/fig9_frequency.dir/bench/fig9_frequency.cpp.o.d"
  "bench/fig9_frequency"
  "bench/fig9_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
