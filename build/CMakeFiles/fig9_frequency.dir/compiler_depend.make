# Empty compiler generated dependencies file for fig9_frequency.
# This may be replaced when dependencies are built.
