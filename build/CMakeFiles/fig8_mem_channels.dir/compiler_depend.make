# Empty compiler generated dependencies file for fig8_mem_channels.
# This may be replaced when dependencies are built.
