file(REMOVE_RECURSE
  "CMakeFiles/fig8_mem_channels.dir/bench/fig8_mem_channels.cpp.o"
  "CMakeFiles/fig8_mem_channels.dir/bench/fig8_mem_channels.cpp.o.d"
  "bench/fig8_mem_channels"
  "bench/fig8_mem_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mem_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
