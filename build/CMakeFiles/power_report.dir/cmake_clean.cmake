file(REMOVE_RECURSE
  "CMakeFiles/power_report.dir/bench/power_report.cpp.o"
  "CMakeFiles/power_report.dir/bench/power_report.cpp.o.d"
  "bench/power_report"
  "bench/power_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
