# Empty dependencies file for fig5_vector_width.
# This may be replaced when dependencies are built.
