file(REMOVE_RECURSE
  "CMakeFiles/fig5_vector_width.dir/bench/fig5_vector_width.cpp.o"
  "CMakeFiles/fig5_vector_width.dir/bench/fig5_vector_width.cpp.o.d"
  "bench/fig5_vector_width"
  "bench/fig5_vector_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_vector_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
