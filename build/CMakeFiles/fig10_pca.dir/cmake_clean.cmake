file(REMOVE_RECURSE
  "CMakeFiles/fig10_pca.dir/bench/fig10_pca.cpp.o"
  "CMakeFiles/fig10_pca.dir/bench/fig10_pca.cpp.o.d"
  "bench/fig10_pca"
  "bench/fig10_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
