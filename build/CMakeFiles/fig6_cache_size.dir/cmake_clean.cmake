file(REMOVE_RECURSE
  "CMakeFiles/fig6_cache_size.dir/bench/fig6_cache_size.cpp.o"
  "CMakeFiles/fig6_cache_size.dir/bench/fig6_cache_size.cpp.o.d"
  "bench/fig6_cache_size"
  "bench/fig6_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
