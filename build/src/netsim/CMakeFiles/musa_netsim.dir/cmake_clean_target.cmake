file(REMOVE_RECURSE
  "libmusa_netsim.a"
)
