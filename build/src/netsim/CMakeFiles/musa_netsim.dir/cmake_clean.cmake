file(REMOVE_RECURSE
  "CMakeFiles/musa_netsim.dir/dimemas.cpp.o"
  "CMakeFiles/musa_netsim.dir/dimemas.cpp.o.d"
  "CMakeFiles/musa_netsim.dir/topology.cpp.o"
  "CMakeFiles/musa_netsim.dir/topology.cpp.o.d"
  "libmusa_netsim.a"
  "libmusa_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
