# Empty compiler generated dependencies file for musa_netsim.
# This may be replaced when dependencies are built.
