file(REMOVE_RECURSE
  "libmusa_apps.a"
)
