# Empty compiler generated dependencies file for musa_apps.
# This may be replaced when dependencies are built.
