file(REMOVE_RECURSE
  "CMakeFiles/musa_apps.dir/apps.cpp.o"
  "CMakeFiles/musa_apps.dir/apps.cpp.o.d"
  "libmusa_apps.a"
  "libmusa_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
