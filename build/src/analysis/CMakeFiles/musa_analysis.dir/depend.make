# Empty dependencies file for musa_analysis.
# This may be replaced when dependencies are built.
