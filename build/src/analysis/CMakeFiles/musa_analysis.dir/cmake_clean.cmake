file(REMOVE_RECURSE
  "CMakeFiles/musa_analysis.dir/pareto.cpp.o"
  "CMakeFiles/musa_analysis.dir/pareto.cpp.o.d"
  "CMakeFiles/musa_analysis.dir/pca.cpp.o"
  "CMakeFiles/musa_analysis.dir/pca.cpp.o.d"
  "CMakeFiles/musa_analysis.dir/timeline.cpp.o"
  "CMakeFiles/musa_analysis.dir/timeline.cpp.o.d"
  "libmusa_analysis.a"
  "libmusa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
