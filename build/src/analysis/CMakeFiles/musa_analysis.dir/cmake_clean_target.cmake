file(REMOVE_RECURSE
  "libmusa_analysis.a"
)
