
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/pareto.cpp" "src/analysis/CMakeFiles/musa_analysis.dir/pareto.cpp.o" "gcc" "src/analysis/CMakeFiles/musa_analysis.dir/pareto.cpp.o.d"
  "/root/repo/src/analysis/pca.cpp" "src/analysis/CMakeFiles/musa_analysis.dir/pca.cpp.o" "gcc" "src/analysis/CMakeFiles/musa_analysis.dir/pca.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/analysis/CMakeFiles/musa_analysis.dir/timeline.cpp.o" "gcc" "src/analysis/CMakeFiles/musa_analysis.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/musa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/musa_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/musa_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/musa_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/dramsim/CMakeFiles/musa_dramsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/musa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/musa_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
