# Empty dependencies file for musa_dramsim.
# This may be replaced when dependencies are built.
