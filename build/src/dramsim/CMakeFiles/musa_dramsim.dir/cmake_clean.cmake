file(REMOVE_RECURSE
  "CMakeFiles/musa_dramsim.dir/dram.cpp.o"
  "CMakeFiles/musa_dramsim.dir/dram.cpp.o.d"
  "libmusa_dramsim.a"
  "libmusa_dramsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_dramsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
