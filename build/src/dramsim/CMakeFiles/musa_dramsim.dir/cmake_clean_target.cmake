file(REMOVE_RECURSE
  "libmusa_dramsim.a"
)
