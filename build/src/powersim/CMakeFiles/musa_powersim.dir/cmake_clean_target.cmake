file(REMOVE_RECURSE
  "libmusa_powersim.a"
)
