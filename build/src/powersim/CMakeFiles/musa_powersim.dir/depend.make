# Empty dependencies file for musa_powersim.
# This may be replaced when dependencies are built.
