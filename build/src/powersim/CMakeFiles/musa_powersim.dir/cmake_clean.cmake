file(REMOVE_RECURSE
  "CMakeFiles/musa_powersim.dir/power.cpp.o"
  "CMakeFiles/musa_powersim.dir/power.cpp.o.d"
  "libmusa_powersim.a"
  "libmusa_powersim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_powersim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
