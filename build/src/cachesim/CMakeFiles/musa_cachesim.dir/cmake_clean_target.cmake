file(REMOVE_RECURSE
  "libmusa_cachesim.a"
)
