file(REMOVE_RECURSE
  "CMakeFiles/musa_cachesim.dir/cache.cpp.o"
  "CMakeFiles/musa_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/musa_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/musa_cachesim.dir/hierarchy.cpp.o.d"
  "libmusa_cachesim.a"
  "libmusa_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
