# Empty dependencies file for musa_cachesim.
# This may be replaced when dependencies are built.
