file(REMOVE_RECURSE
  "libmusa_core.a"
)
