# Empty dependencies file for musa_core.
# This may be replaced when dependencies are built.
