file(REMOVE_RECURSE
  "CMakeFiles/musa_core.dir/config_space.cpp.o"
  "CMakeFiles/musa_core.dir/config_space.cpp.o.d"
  "CMakeFiles/musa_core.dir/dse.cpp.o"
  "CMakeFiles/musa_core.dir/dse.cpp.o.d"
  "CMakeFiles/musa_core.dir/pipeline.cpp.o"
  "CMakeFiles/musa_core.dir/pipeline.cpp.o.d"
  "libmusa_core.a"
  "libmusa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
