file(REMOVE_RECURSE
  "CMakeFiles/musa_trace.dir/kernel.cpp.o"
  "CMakeFiles/musa_trace.dir/kernel.cpp.o.d"
  "CMakeFiles/musa_trace.dir/trace_io.cpp.o"
  "CMakeFiles/musa_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/musa_trace.dir/worksharing.cpp.o"
  "CMakeFiles/musa_trace.dir/worksharing.cpp.o.d"
  "libmusa_trace.a"
  "libmusa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
