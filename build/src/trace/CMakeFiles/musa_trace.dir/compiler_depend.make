# Empty compiler generated dependencies file for musa_trace.
# This may be replaced when dependencies are built.
