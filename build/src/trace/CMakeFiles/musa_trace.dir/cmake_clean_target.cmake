file(REMOVE_RECURSE
  "libmusa_trace.a"
)
