file(REMOVE_RECURSE
  "CMakeFiles/musa_isa.dir/vector_fusion.cpp.o"
  "CMakeFiles/musa_isa.dir/vector_fusion.cpp.o.d"
  "libmusa_isa.a"
  "libmusa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
