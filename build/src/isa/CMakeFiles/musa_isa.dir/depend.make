# Empty dependencies file for musa_isa.
# This may be replaced when dependencies are built.
