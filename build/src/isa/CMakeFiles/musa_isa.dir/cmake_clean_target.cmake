file(REMOVE_RECURSE
  "libmusa_isa.a"
)
