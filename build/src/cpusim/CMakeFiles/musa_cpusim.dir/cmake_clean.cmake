file(REMOVE_RECURSE
  "CMakeFiles/musa_cpusim.dir/core_model.cpp.o"
  "CMakeFiles/musa_cpusim.dir/core_model.cpp.o.d"
  "CMakeFiles/musa_cpusim.dir/node_detailed.cpp.o"
  "CMakeFiles/musa_cpusim.dir/node_detailed.cpp.o.d"
  "CMakeFiles/musa_cpusim.dir/runtime.cpp.o"
  "CMakeFiles/musa_cpusim.dir/runtime.cpp.o.d"
  "libmusa_cpusim.a"
  "libmusa_cpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_cpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
