
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpusim/core_model.cpp" "src/cpusim/CMakeFiles/musa_cpusim.dir/core_model.cpp.o" "gcc" "src/cpusim/CMakeFiles/musa_cpusim.dir/core_model.cpp.o.d"
  "/root/repo/src/cpusim/node_detailed.cpp" "src/cpusim/CMakeFiles/musa_cpusim.dir/node_detailed.cpp.o" "gcc" "src/cpusim/CMakeFiles/musa_cpusim.dir/node_detailed.cpp.o.d"
  "/root/repo/src/cpusim/runtime.cpp" "src/cpusim/CMakeFiles/musa_cpusim.dir/runtime.cpp.o" "gcc" "src/cpusim/CMakeFiles/musa_cpusim.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/musa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/musa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/musa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/musa_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/dramsim/CMakeFiles/musa_dramsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
