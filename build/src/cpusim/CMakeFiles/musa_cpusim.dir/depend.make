# Empty dependencies file for musa_cpusim.
# This may be replaced when dependencies are built.
