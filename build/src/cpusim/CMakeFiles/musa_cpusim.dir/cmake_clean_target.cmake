file(REMOVE_RECURSE
  "libmusa_cpusim.a"
)
