file(REMOVE_RECURSE
  "libmusa_common.a"
)
