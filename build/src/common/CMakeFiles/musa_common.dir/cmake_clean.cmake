file(REMOVE_RECURSE
  "CMakeFiles/musa_common.dir/csv.cpp.o"
  "CMakeFiles/musa_common.dir/csv.cpp.o.d"
  "CMakeFiles/musa_common.dir/parallel.cpp.o"
  "CMakeFiles/musa_common.dir/parallel.cpp.o.d"
  "CMakeFiles/musa_common.dir/stats.cpp.o"
  "CMakeFiles/musa_common.dir/stats.cpp.o.d"
  "CMakeFiles/musa_common.dir/table.cpp.o"
  "CMakeFiles/musa_common.dir/table.cpp.o.d"
  "libmusa_common.a"
  "libmusa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/musa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
