# Empty compiler generated dependencies file for musa_common.
# This may be replaced when dependencies are built.
