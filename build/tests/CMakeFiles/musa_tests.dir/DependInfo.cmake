
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/musa_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/musa_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_cachesim.cpp" "tests/CMakeFiles/musa_tests.dir/test_cachesim.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_cachesim.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/musa_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/musa_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_cpusim_core.cpp" "tests/CMakeFiles/musa_tests.dir/test_cpusim_core.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_cpusim_core.cpp.o.d"
  "/root/repo/tests/test_cpusim_runtime.cpp" "tests/CMakeFiles/musa_tests.dir/test_cpusim_runtime.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_cpusim_runtime.cpp.o.d"
  "/root/repo/tests/test_dramsim.cpp" "tests/CMakeFiles/musa_tests.dir/test_dramsim.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_dramsim.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/musa_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/musa_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_netsim.cpp" "tests/CMakeFiles/musa_tests.dir/test_netsim.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_netsim.cpp.o.d"
  "/root/repo/tests/test_node_detailed.cpp" "tests/CMakeFiles/musa_tests.dir/test_node_detailed.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_node_detailed.cpp.o.d"
  "/root/repo/tests/test_powersim.cpp" "tests/CMakeFiles/musa_tests.dir/test_powersim.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_powersim.cpp.o.d"
  "/root/repo/tests/test_topology.cpp" "tests/CMakeFiles/musa_tests.dir/test_topology.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_topology.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/musa_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/musa_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_validation.cpp" "tests/CMakeFiles/musa_tests.dir/test_validation.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_validation.cpp.o.d"
  "/root/repo/tests/test_worksharing.cpp" "tests/CMakeFiles/musa_tests.dir/test_worksharing.cpp.o" "gcc" "tests/CMakeFiles/musa_tests.dir/test_worksharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/musa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/powersim/CMakeFiles/musa_powersim.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/musa_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/musa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cpusim/CMakeFiles/musa_cpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/musa_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/dramsim/CMakeFiles/musa_dramsim.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/musa_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/musa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/musa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/musa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
