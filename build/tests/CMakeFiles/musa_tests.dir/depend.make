# Empty dependencies file for musa_tests.
# This may be replaced when dependencies are built.
